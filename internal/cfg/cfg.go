// Package cfg builds control-flow graphs over Polaris IR program units.
// The paper's IR maintains successor/predecessor flow links on every
// statement and keeps them consistent automatically; here the graph is
// (re)built on demand from the structured statement tree, which is
// always consistent by construction — Build after any transformation
// yields the current flow.
package cfg

import (
	"fmt"
	"strings"

	"polaris/internal/ir"
)

// Node is one vertex of the CFG. Entry and Exit nodes carry a nil Stmt.
type Node struct {
	ID    int
	Stmt  ir.Stmt
	Succs []*Node
	Preds []*Node
	// Kind distinguishes synthetic nodes.
	Kind NodeKind
}

// NodeKind classifies nodes.
type NodeKind int

// Node kinds.
const (
	KindStmt NodeKind = iota
	KindEntry
	KindExit
)

// Graph is the CFG of one program unit.
type Graph struct {
	Entry *Node
	Exit  *Node
	Nodes []*Node
	// byStmt maps statements to their nodes.
	byStmt map[ir.Stmt]*Node
	// idom[n.ID] is the immediate dominator node (nil for entry).
	idom []*Node
}

// Build constructs the CFG for a unit body. DO loops produce a back
// edge from the loop body's end to the DO header and an exit edge from
// the header past the loop; IFs fork and join; RETURN and STOP jump to
// exit.
func Build(u *ir.ProgramUnit) *Graph {
	g := &Graph{byStmt: map[ir.Stmt]*Node{}}
	g.Entry = g.newNode(nil, KindEntry)
	g.Exit = g.newNode(nil, KindExit)
	last := g.buildBlock(u.Body, []*Node{g.Entry})
	for _, n := range last {
		g.connect(n, g.Exit)
	}
	g.computeDominators()
	return g
}

func (g *Graph) newNode(s ir.Stmt, kind NodeKind) *Node {
	n := &Node{ID: len(g.Nodes), Stmt: s, Kind: kind}
	g.Nodes = append(g.Nodes, n)
	if s != nil {
		g.byStmt[s] = n
	}
	return n
}

func (g *Graph) connect(from, to *Node) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// buildBlock threads the block's statements after the given incoming
// nodes and returns the set of nodes that fall through its end.
func (g *Graph) buildBlock(b *ir.Block, in []*Node) []*Node {
	cur := in
	for _, s := range b.Stmts {
		cur = g.buildStmt(s, cur)
		if len(cur) == 0 {
			// Unreachable code after RETURN/STOP still gets nodes so
			// analyses can see it, but with no incoming edges.
		}
	}
	return cur
}

func (g *Graph) buildStmt(s ir.Stmt, in []*Node) []*Node {
	switch x := s.(type) {
	case *ir.DoStmt:
		header := g.newNode(s, KindStmt)
		for _, p := range in {
			g.connect(p, header)
		}
		bodyEnd := g.buildBlock(x.Body, []*Node{header})
		for _, e := range bodyEnd {
			g.connect(e, header) // back edge
		}
		return []*Node{header} // loop exit falls out of the header
	case *ir.IfStmt:
		cond := g.newNode(s, KindStmt)
		for _, p := range in {
			g.connect(p, cond)
		}
		thenEnd := g.buildBlock(x.Then, []*Node{cond})
		out := append([]*Node{}, thenEnd...)
		if x.Else != nil {
			elseEnd := g.buildBlock(x.Else, []*Node{cond})
			out = append(out, elseEnd...)
		} else {
			out = append(out, cond)
		}
		return out
	case *ir.ReturnStmt, *ir.StopStmt:
		n := g.newNode(s, KindStmt)
		for _, p := range in {
			g.connect(p, n)
		}
		g.connect(n, g.Exit)
		return nil
	default:
		n := g.newNode(s, KindStmt)
		for _, p := range in {
			g.connect(p, n)
		}
		return []*Node{n}
	}
}

// NodeFor returns the CFG node of a statement, or nil.
func (g *Graph) NodeFor(s ir.Stmt) *Node { return g.byStmt[s] }

// computeDominators runs the iterative dominator algorithm
// (Cooper/Harvey/Kennedy) over the graph in reverse postorder.
func (g *Graph) computeDominators() {
	order := g.reversePostorder()
	rpoIndex := make([]int, len(g.Nodes))
	for i, n := range order {
		rpoIndex[n.ID] = i
	}
	g.idom = make([]*Node, len(g.Nodes))
	g.idom[g.Entry.ID] = g.Entry
	changed := true
	for changed {
		changed = false
		for _, n := range order {
			if n == g.Entry {
				continue
			}
			var newIdom *Node
			for _, p := range n.Preds {
				if g.idom[p.ID] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
					continue
				}
				newIdom = g.intersect(p, newIdom, rpoIndex)
			}
			if newIdom != nil && g.idom[n.ID] != newIdom {
				g.idom[n.ID] = newIdom
				changed = true
			}
		}
	}
}

func (g *Graph) intersect(a, b *Node, rpo []int) *Node {
	for a != b {
		for rpo[a.ID] > rpo[b.ID] {
			a = g.idom[a.ID]
		}
		for rpo[b.ID] > rpo[a.ID] {
			b = g.idom[b.ID]
		}
	}
	return a
}

func (g *Graph) reversePostorder() []*Node {
	seen := make([]bool, len(g.Nodes))
	var post []*Node
	var dfs func(*Node)
	dfs = func(n *Node) {
		seen[n.ID] = true
		for _, s := range n.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, n)
	}
	dfs(g.Entry)
	out := make([]*Node, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	return out
}

// Idom returns the immediate dominator of n (nil for entry or
// unreachable nodes).
func (g *Graph) Idom(n *Node) *Node {
	d := g.idom[n.ID]
	if d == n {
		return nil
	}
	return d
}

// Dominates reports whether a dominates b (reflexively).
func (g *Graph) Dominates(a, b *Node) bool {
	for n := b; n != nil; {
		if n == a {
			return true
		}
		d := g.idom[n.ID]
		if d == nil || d == n {
			return a == n
		}
		n = d
	}
	return false
}

// StmtDominates reports whether statement a dominates statement b.
// Unknown statements never dominate.
func (g *Graph) StmtDominates(a, b ir.Stmt) bool {
	na, nb := g.byStmt[a], g.byStmt[b]
	if na == nil || nb == nil {
		return false
	}
	return g.Dominates(na, nb)
}

// String renders the graph for debugging and golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		label := "entry"
		switch {
		case n.Kind == KindExit:
			label = "exit"
		case n.Stmt != nil:
			label = stmtLabel(n.Stmt)
		}
		ids := make([]string, len(n.Succs))
		for i, s := range n.Succs {
			ids[i] = fmt.Sprintf("%d", s.ID)
		}
		fmt.Fprintf(&b, "%d: %s -> [%s]\n", n.ID, label, strings.Join(ids, " "))
	}
	return b.String()
}

func stmtLabel(s ir.Stmt) string {
	switch x := s.(type) {
	case *ir.AssignStmt:
		return fmt.Sprintf("%s = %s", x.LHS, x.RHS)
	case *ir.DoStmt:
		return "DO " + x.Index
	case *ir.IfStmt:
		return "IF " + x.Cond.String()
	case *ir.CallStmt:
		return "CALL " + x.Name
	case *ir.ReturnStmt:
		return "RETURN"
	case *ir.StopStmt:
		return "STOP"
	case *ir.ContinueStmt:
		return "CONTINUE"
	}
	return "?"
}
