// Package interp executes Polaris IR programs on the simulated machine
// of package machine: a tree-walking interpreter with exact Fortran
// semantics for the supported subset, cycle accounting per operation,
// simulated DOALL execution honouring the ParInfo annotations
// (privatization, last values, reductions), speculative LRPD execution
// with the PD test, and an optional real-goroutine mode used by tests
// to validate that transformed loops are genuinely order-independent.
package interp

import (
	"fmt"
	"math"

	"polaris/internal/ir"
)

// Value is a runtime scalar value.
type Value struct {
	Kind ir.Type
	I    int64
	F    float64
	B    bool
}

// IntVal returns an integer value.
func IntVal(i int64) Value { return Value{Kind: ir.TypeInteger, I: i} }

// RealVal returns a real value.
func RealVal(f float64) Value { return Value{Kind: ir.TypeReal, F: f} }

// BoolVal returns a logical value.
func BoolVal(b bool) Value { return Value{Kind: ir.TypeLogical, B: b} }

// AsFloat converts numerics to float64.
func (v Value) AsFloat() float64 {
	if v.Kind == ir.TypeInteger {
		return float64(v.I)
	}
	return v.F
}

// AsInt converts numerics to int64 (truncating reals, as Fortran
// assignment to INTEGER does).
func (v Value) AsInt() int64 {
	if v.Kind == ir.TypeInteger {
		return v.I
	}
	return int64(v.F)
}

func (v Value) String() string {
	switch v.Kind {
	case ir.TypeInteger:
		return fmt.Sprintf("%d", v.I)
	case ir.TypeLogical:
		return fmt.Sprintf("%v", v.B)
	default:
		return fmt.Sprintf("%g", v.F)
	}
}

// Array is runtime array storage (column-major).
type Array struct {
	Name string
	Kind ir.Type
	Lo   []int64
	Size []int64
	F    []float64
	I    []int64
}

// NewArray allocates an array.
func NewArray(name string, kind ir.Type, lo, size []int64) *Array {
	total := int64(1)
	for _, s := range size {
		total *= s
	}
	a := &Array{Name: name, Kind: kind, Lo: lo, Size: size}
	if kind == ir.TypeInteger {
		a.I = make([]int64, total)
	} else {
		a.F = make([]float64, total)
	}
	return a
}

// Total returns the element count.
func (a *Array) Total() int {
	if a.Kind == ir.TypeInteger {
		return len(a.I)
	}
	return len(a.F)
}

// Flat converts subscripts to a flat index, checking bounds.
func (a *Array) Flat(subs []int64) (int, error) {
	if len(subs) != len(a.Size) {
		return 0, fmt.Errorf("interp: %s: rank %d referenced with %d subscripts", a.Name, len(a.Size), len(subs))
	}
	idx := int64(0)
	stride := int64(1)
	for d := range subs {
		off := subs[d] - a.Lo[d]
		if off < 0 || off >= a.Size[d] {
			return 0, fmt.Errorf("interp: %s: subscript %d out of bounds [%d,%d] in dimension %d",
				a.Name, subs[d], a.Lo[d], a.Lo[d]+a.Size[d]-1, d+1)
		}
		idx += off * stride
		stride *= a.Size[d]
	}
	return int(idx), nil
}

// Get reads element i.
func (a *Array) Get(i int) Value {
	if a.Kind == ir.TypeInteger {
		return IntVal(a.I[i])
	}
	return RealVal(a.F[i])
}

// Set writes element i, converting the value to the array's type.
func (a *Array) Set(i int, v Value) {
	if a.Kind == ir.TypeInteger {
		a.I[i] = v.AsInt()
	} else {
		a.F[i] = v.AsFloat()
	}
}

// CloneData returns a deep copy (for LRPD checkpoints and private
// copies).
func (a *Array) CloneData() *Array {
	c := &Array{Name: a.Name, Kind: a.Kind, Lo: a.Lo, Size: a.Size}
	if a.Kind == ir.TypeInteger {
		c.I = append([]int64(nil), a.I...)
	} else {
		c.F = append([]float64(nil), a.F...)
	}
	return c
}

// CopyFrom restores data from a checkpoint of identical shape.
func (a *Array) CopyFrom(src *Array) {
	if a.Kind == ir.TypeInteger {
		copy(a.I, src.I)
	} else {
		copy(a.F, src.F)
	}
}

// Fill sets every element to v (used for reduction identities).
func (a *Array) Fill(v Value) {
	if a.Kind == ir.TypeInteger {
		for i := range a.I {
			a.I[i] = v.AsInt()
		}
	} else {
		for i := range a.F {
			a.F[i] = v.AsFloat()
		}
	}
}

// cell is scalar storage. A cell may alias an array element (array
// elements passed as scalar actuals).
type cell struct {
	kind ir.Type
	v    Value
	arr  *Array
	idx  int
}

func (c *cell) load() Value {
	if c.arr != nil {
		return c.arr.Get(c.idx)
	}
	return c.v
}

func (c *cell) store(v Value) {
	if c.arr != nil {
		c.arr.Set(c.idx, v)
		return
	}
	switch c.kind {
	case ir.TypeInteger:
		c.v = IntVal(v.AsInt())
	case ir.TypeLogical:
		c.v = BoolVal(v.B)
	default:
		c.v = RealVal(v.AsFloat())
	}
}

// reductionIdentity returns the identity value for a reduction op.
func reductionIdentity(op string, kind ir.Type) Value {
	switch op {
	case "+":
		if kind == ir.TypeInteger {
			return IntVal(0)
		}
		return RealVal(0)
	case "*":
		if kind == ir.TypeInteger {
			return IntVal(1)
		}
		return RealVal(1)
	case "MAX":
		if kind == ir.TypeInteger {
			return IntVal(math.MinInt64)
		}
		return RealVal(math.Inf(-1))
	case "MIN":
		if kind == ir.TypeInteger {
			return IntVal(math.MaxInt64)
		}
		return RealVal(math.Inf(1))
	}
	return RealVal(0)
}

// combine merges two values under a reduction op.
func combine(op string, a, b Value) Value {
	switch op {
	case "+":
		if a.Kind == ir.TypeInteger && b.Kind == ir.TypeInteger {
			return IntVal(a.I + b.I)
		}
		return RealVal(a.AsFloat() + b.AsFloat())
	case "*":
		if a.Kind == ir.TypeInteger && b.Kind == ir.TypeInteger {
			return IntVal(a.I * b.I)
		}
		return RealVal(a.AsFloat() * b.AsFloat())
	case "MAX":
		if a.AsFloat() >= b.AsFloat() {
			return a
		}
		return b
	case "MIN":
		if a.AsFloat() <= b.AsFloat() {
			return a
		}
		return b
	}
	return a
}
