package interp

import (
	"context"
	"fmt"

	"polaris/internal/ir"
	"polaris/internal/lrpd"
	"polaris/internal/machine"
	"polaris/internal/obsv"
)

// Interp executes a program on the simulated machine.
type Interp struct {
	Prog  *ir.Program
	Model machine.Model
	Cost  machine.Cost

	// Parallel enables DOALL/LRPD execution of annotated loops; when
	// false every loop runs serially (the baseline timing).
	Parallel bool
	// Validate runs parallel iterations in reverse order with fresh
	// private copies, so order-dependent loops produce different
	// results than serial runs (used by correctness tests).
	Validate bool
	// Concurrent executes DOALL iterations on real goroutines (one per
	// simulated processor) with private overlays and partial-reduction
	// merging. Timing still comes from the cycle model.
	Concurrent bool

	// work counts executed cycles (serial-equivalent total work).
	work int64
	// saved accumulates work - simulatedParallelTime per parallel
	// region (negative entries model failed speculation).
	saved int64
	// parallelWork counts the cycles executed inside successful parallel
	// regions (DOALL bodies and passing speculative runs). Its ratio to
	// work is the run's parallel-coverage fraction.
	parallelWork int64
	// loopStats accumulates per-loop execution metrics keyed by the
	// stable loop ID the analysis driver assigned (decision records use
	// the same IDs, so compile-time verdicts and runtime behaviour join).
	loopStats map[string]*obsv.LoopMetric

	// Stats.
	ParallelLoopExecs int64
	LRPDPasses        int64
	LRPDFailures      int64
	// LRPDBodyWork accumulates the sequential work of speculative loop
	// executions; LRPDTime the simulated time actually charged for
	// them (speculative attempt, plus the sequential re-execution on
	// failure). Their ratio gives the paper's loop-level Figure 6
	// curves.
	LRPDBodyWork int64
	LRPDTime     int64

	commons map[string]*commonBlock
	// shadows instruments arrays during speculative LRPD execution.
	shadows map[*Array]*lrpd.Shadow
	curIter int64
	// redTargets/redUpdates/redFrame support the reduction-form cost
	// model during DOALL execution (see parallelTime).
	redTargets map[string]bool
	redUpdates int64
	redFrame   *frame
	// markCycles counts PD-test marking work during speculation.
	markCycles int64
	inDoall    bool

	// depth guards runaway recursion through user calls.
	depth int

	// ctx cancels long-running executions; polled every ctxStride
	// statements. Concurrent DOALL workers get their own counter, so
	// polling never races.
	ctx   context.Context
	steps int64
}

// ctxStride is how many statements execute between cancellation polls:
// frequent enough for prompt cancellation, cheap enough to vanish in
// the interpreter's per-statement cost.
const ctxStride = 1024

type commonBlock struct {
	arrays  map[string]*Array
	scalars map[string]*cell
}

// New returns an interpreter for the program.
func New(prog *ir.Program, model machine.Model) *Interp {
	return &Interp{
		Prog:    prog,
		Model:   model,
		Cost:    machine.DefaultCost(),
		commons: map[string]*commonBlock{},
	}
}

// Work returns total executed cycles (serial-equivalent).
func (in *Interp) Work() int64 { return in.work }

// Time returns the simulated execution time in cycles, including the
// machine's code-generation quality factor.
func (in *Interp) Time() int64 {
	t := in.work - in.saved
	return int64(float64(t) * in.Model.CodegenFactor)
}

func (in *Interp) charge(n int64) { in.work += n }

// ParallelWork returns the cycles executed inside successful parallel
// regions; ParallelWork()/Work() is the parallel-coverage fraction.
func (in *Interp) ParallelWork() int64 { return in.parallelWork }

// Coverage returns the fraction of total work executed in parallel
// regions (0 when nothing ran).
func (in *Interp) Coverage() float64 {
	if in.work == 0 {
		return 0
	}
	return float64(in.parallelWork) / float64(in.work)
}

// recordLoop accumulates one parallel-region execution into the
// per-loop metrics. kind is "doall" or "lrpd"; bodyWork is the
// serial-equivalent body work, parTime the simulated parallel time.
func (in *Interp) recordLoop(d *ir.DoStmt, kind string, bodyWork, parTime int64) *obsv.LoopMetric {
	if in.loopStats == nil {
		in.loopStats = map[string]*obsv.LoopMetric{}
	}
	key := d.ID
	if key == "" {
		key = "DO " + d.Index
	}
	lm := in.loopStats[key]
	if lm == nil {
		lm = &obsv.LoopMetric{Loop: key, Kind: kind}
		in.loopStats[key] = lm
	}
	lm.Execs++
	lm.SerialCycles += bodyWork
	lm.ParallelCycles += parTime
	return lm
}

// Metrics summarizes the run as an obsv.RunMetrics record: total and
// parallel work, coverage, speculation outcomes, and the per-loop
// breakdown in stable order.
func (in *Interp) Metrics(label string) obsv.RunMetrics {
	m := obsv.RunMetrics{
		Label:        label,
		Processors:   in.Model.Processors,
		TotalCycles:  in.Time(),
		TotalWork:    in.work,
		ParallelWork: in.parallelWork,
		Coverage:     in.Coverage(),
		PDPasses:     in.LRPDPasses,
		PDFailures:   in.LRPDFailures,
	}
	for _, lm := range in.loopStats {
		cp := *lm
		cp.Label = label
		m.Loops = append(m.Loops, cp)
	}
	obsv.SortLoopMetrics(m.Loops)
	return m
}

// Probe returns the value of a scalar in a COMMON block, the
// convention programs use to expose results to the harness and tests.
func (in *Interp) Probe(block, name string) (float64, bool) {
	blk := in.commons[block]
	if blk == nil {
		return 0, false
	}
	c := blk.scalars[name]
	if c == nil {
		return 0, false
	}
	return c.load().AsFloat(), true
}

// ProbeArray returns a copy of a COMMON array's data as float64s.
func (in *Interp) ProbeArray(block, name string) ([]float64, bool) {
	blk := in.commons[block]
	if blk == nil {
		return nil, false
	}
	a := blk.arrays[name]
	if a == nil {
		return nil, false
	}
	out := make([]float64, a.Total())
	for i := range out {
		out[i] = a.Get(i).AsFloat()
	}
	return out, true
}

// frame is the activation record of a program unit.
type frame struct {
	unit    *ir.ProgramUnit
	scalars map[string]*cell
	arrays  map[string]*Array
}

// Run executes the program's main unit.
func (in *Interp) Run() error { return in.RunContext(context.Background()) }

// RunContext executes the program's main unit under ctx. Cancellation
// is polled during the execution loop (including inside DO loops and
// concurrent DOALL workers) and surfaces promptly as ctx.Err().
func (in *Interp) RunContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	in.ctx = ctx
	main := in.Prog.Main()
	if main == nil {
		return fmt.Errorf("interp: no program unit")
	}
	fr, err := in.newFrame(main, nil, nil)
	if err != nil {
		return err
	}
	_, err = in.execBlock(fr, main.Body)
	return err
}

// cancelled polls the context every ctxStride statements.
func (in *Interp) cancelled() error {
	if in.ctx == nil {
		return nil
	}
	in.steps++
	if in.steps%ctxStride != 0 {
		return nil
	}
	return in.ctx.Err()
}

// Frame construction: evaluates dimension declarators with formals
// bound, allocates arrays, wires COMMON storage.
func (in *Interp) newFrame(u *ir.ProgramUnit, formalCells map[string]*cell, formalArrays map[string]*Array) (*frame, error) {
	fr := &frame{unit: u, scalars: map[string]*cell{}, arrays: map[string]*Array{}}
	for name, c := range formalCells {
		fr.scalars[name] = c
	}
	for name, a := range formalArrays {
		fr.arrays[name] = a
	}
	// PARAMETER constants first: array declarators (including those of
	// formals, which precede declarations in the symbol table) may
	// reference them.
	for _, name := range u.Symbols.Names() {
		sym := u.Symbols.Lookup(name)
		if sym.Param == nil {
			continue
		}
		v, err := in.eval(fr, sym.Param)
		if err != nil {
			return nil, err
		}
		c := &cell{kind: sym.Type}
		c.store(v)
		fr.scalars[name] = c
	}
	for _, name := range u.Symbols.Names() {
		sym := u.Symbols.Lookup(name)
		if sym.Param != nil {
			continue
		}
		if sym.Common != "" {
			if err := in.bindCommon(fr, sym); err != nil {
				return nil, err
			}
			continue
		}
		if sym.IsArray() {
			if actual, bound := fr.arrays[name]; bound {
				// Formal bound to an actual: view the actual's storage
				// under the formal's declared shape (sequence
				// association), with adjustable dims evaluated in this
				// frame where scalar formals are already bound.
				fr.arrays[name] = in.reshapeView(fr, sym, actual)
				continue
			}
			a, err := in.allocArray(fr, sym)
			if err != nil {
				if sym.Formal {
					// Assumed-size formal without an actual: error
					// only on use; skip allocation.
					continue
				}
				return nil, err
			}
			fr.arrays[name] = a
		}
	}
	return fr, nil
}

func (in *Interp) allocArray(fr *frame, sym *ir.Symbol) (*Array, error) {
	lo := make([]int64, len(sym.Dims))
	size := make([]int64, len(sym.Dims))
	for i, d := range sym.Dims {
		lv, err := in.eval(fr, d.LoOr1())
		if err != nil {
			return nil, err
		}
		if d.Hi == nil {
			return nil, fmt.Errorf("interp: assumed-size array %s cannot be allocated", sym.Name)
		}
		hv, err := in.eval(fr, d.Hi)
		if err != nil {
			return nil, err
		}
		lo[i] = lv.AsInt()
		size[i] = hv.AsInt() - lv.AsInt() + 1
		if size[i] < 0 {
			size[i] = 0
		}
	}
	return NewArray(sym.Name, sym.Type, lo, size), nil
}

func (in *Interp) bindCommon(fr *frame, sym *ir.Symbol) error {
	blk := in.commons[sym.Common]
	if blk == nil {
		blk = &commonBlock{arrays: map[string]*Array{}, scalars: map[string]*cell{}}
		in.commons[sym.Common] = blk
	}
	if sym.IsArray() {
		a := blk.arrays[sym.Name]
		if a == nil {
			var err error
			a, err = in.allocArray(fr, sym)
			if err != nil {
				return err
			}
			blk.arrays[sym.Name] = a
		}
		fr.arrays[sym.Name] = a
		return nil
	}
	c := blk.scalars[sym.Name]
	if c == nil {
		c = &cell{kind: sym.Type}
		blk.scalars[sym.Name] = c
	}
	fr.scalars[sym.Name] = c
	return nil
}

// getCell returns (allocating lazily) the scalar cell for name.
func (fr *frame) getCell(name string, u *ir.ProgramUnit) *cell {
	if c, ok := fr.scalars[name]; ok {
		return c
	}
	kind := ir.ImplicitType(name)
	if sym := u.Symbols.Lookup(name); sym != nil {
		kind = sym.Type
	}
	c := &cell{kind: kind}
	fr.scalars[name] = c
	return c
}

// control is the statement-level flow signal.
type control int

const (
	ctlNormal control = iota
	ctlReturn
	ctlStop
)

func (in *Interp) execBlock(fr *frame, b *ir.Block) (control, error) {
	for _, s := range b.Stmts {
		c, err := in.execStmt(fr, s)
		if err != nil || c != ctlNormal {
			return c, err
		}
	}
	return ctlNormal, nil
}

func (in *Interp) execStmt(fr *frame, s ir.Stmt) (control, error) {
	if err := in.cancelled(); err != nil {
		return ctlNormal, err
	}
	switch x := s.(type) {
	case *ir.AssignStmt:
		v, err := in.eval(fr, x.RHS)
		if err != nil {
			return ctlNormal, err
		}
		in.charge(in.Cost.Store)
		return ctlNormal, in.assign(fr, x.LHS, v)
	case *ir.IfStmt:
		cond, err := in.eval(fr, x.Cond)
		if err != nil {
			return ctlNormal, err
		}
		in.charge(in.Cost.Branch)
		if cond.B {
			return in.execBlock(fr, x.Then)
		}
		if x.Else != nil {
			return in.execBlock(fr, x.Else)
		}
		return ctlNormal, nil
	case *ir.DoStmt:
		return in.execDo(fr, x)
	case *ir.CallStmt:
		return ctlNormal, in.call(fr, x)
	case *ir.ReturnStmt:
		return ctlReturn, nil
	case *ir.StopStmt:
		return ctlStop, nil
	case *ir.ContinueStmt, *ir.CommentStmt:
		return ctlNormal, nil
	}
	return ctlNormal, fmt.Errorf("interp: unsupported statement %T", s)
}

// assign stores into a scalar or array element, marking LRPD shadows
// when active.
func (in *Interp) assign(fr *frame, lhs ir.Expr, v Value) error {
	switch t := lhs.(type) {
	case *ir.VarRef:
		if in.redTargets != nil && in.redTargets[t.Name] {
			in.redUpdates++
		}
		fr.getCell(t.Name, fr.unit).store(v)
		return nil
	case *ir.ArrayRef:
		if in.redTargets != nil && in.redTargets[t.Name] {
			in.redUpdates++
		}
		arr, idx, err := in.element(fr, t)
		if err != nil {
			return err
		}
		if in.shadows != nil {
			if sh := in.shadows[arr]; sh != nil {
				sh.MarkWrite(idx, in.curIter)
				in.markCycles += in.Model.PDMarkCyclesPerAccess
			}
		}
		arr.Set(idx, v)
		return nil
	}
	return fmt.Errorf("interp: bad assignment target %T", lhs)
}

// element resolves an array reference to storage and flat index.
func (in *Interp) element(fr *frame, ref *ir.ArrayRef) (*Array, int, error) {
	arr := fr.arrays[ref.Name]
	if arr == nil {
		return nil, 0, fmt.Errorf("interp: array %s not allocated in %s", ref.Name, fr.unit.Name)
	}
	subs := make([]int64, len(ref.Subs))
	for i, sexpr := range ref.Subs {
		v, err := in.eval(fr, sexpr)
		if err != nil {
			return nil, 0, err
		}
		subs[i] = v.AsInt()
		in.charge(in.Cost.AddrCalc)
	}
	idx, err := arr.Flat(subs)
	if err != nil {
		return nil, 0, err
	}
	return arr, idx, nil
}

// trips computes the Fortran DO trip count.
func trips(init, limit, step int64) int64 {
	if step == 0 {
		return 0
	}
	n := (limit-init)/step + 1
	if n < 0 {
		return 0
	}
	return n
}

// execDo dispatches serial, DOALL, and speculative LRPD execution.
func (in *Interp) execDo(fr *frame, d *ir.DoStmt) (control, error) {
	initV, err := in.eval(fr, d.Init)
	if err != nil {
		return ctlNormal, err
	}
	limitV, err := in.eval(fr, d.Limit)
	if err != nil {
		return ctlNormal, err
	}
	stepV, err := in.eval(fr, d.StepOr1())
	if err != nil {
		return ctlNormal, err
	}
	init, limit, step := initV.AsInt(), limitV.AsInt(), stepV.AsInt()
	if step == 0 {
		return ctlNormal, fmt.Errorf("interp: zero DO step")
	}
	n := trips(init, limit, step)
	par := d.Par
	if in.Parallel && !in.inDoall && par != nil && n > 1 {
		if par.Parallel {
			return in.execDoall(fr, d, init, step, n)
		}
		if len(par.LRPD) > 0 {
			return in.execLRPD(fr, d, init, step, n)
		}
	}
	return in.execSerialLoop(fr, d, init, step, n)
}

func (in *Interp) execSerialLoop(fr *frame, d *ir.DoStmt, init, step, n int64) (control, error) {
	idx := fr.getCell(d.Index, fr.unit)
	for k := int64(0); k < n; k++ {
		idx.store(IntVal(init + k*step))
		in.charge(in.Cost.LoopIter)
		c, err := in.execBlock(fr, d.Body)
		if err != nil {
			return ctlNormal, err
		}
		if c != ctlNormal {
			return c, nil
		}
	}
	// The index retains its exit value.
	idx.store(IntVal(init + n*step))
	return ctlNormal, nil
}

// call invokes a subroutine with Fortran reference semantics: variable
// and whole-array actuals alias; array elements alias a single cell;
// other expressions are copy-in temporaries.
func (in *Interp) call(fr *frame, c *ir.CallStmt) error {
	callee := in.Prog.Unit(c.Name)
	if callee == nil {
		return fmt.Errorf("interp: unknown subroutine %s", c.Name)
	}
	if callee.Kind != ir.UnitSubroutine {
		return fmt.Errorf("interp: CALL to non-subroutine %s", c.Name)
	}
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > 200 {
		return fmt.Errorf("interp: call depth limit (runaway recursion?)")
	}
	if len(c.Args) != len(callee.Formals) {
		return fmt.Errorf("interp: CALL %s: %d args for %d formals", c.Name, len(c.Args), len(callee.Formals))
	}
	in.charge(in.Cost.CallOverhead)
	cells := map[string]*cell{}
	arrays := map[string]*Array{}
	for i, formal := range callee.Formals {
		fsym := callee.Symbols.Lookup(formal)
		actual := c.Args[i]
		switch av := actual.(type) {
		case *ir.VarRef:
			if arr, isArr := fr.arrays[av.Name]; isArr {
				arrays[formal] = arr
				continue
			}
			cells[formal] = fr.getCell(av.Name, fr.unit)
		case *ir.ArrayRef:
			arr, idx, err := in.element(fr, av)
			if err != nil {
				return err
			}
			if fsym != nil && fsym.IsArray() {
				// Array formal bound to an element: the formal aliases
				// the window starting at that element (sequence
				// association over the flattened storage).
				arrays[formal] = windowOf(arr, idx)
				continue
			}
			cells[formal] = &cell{kind: fsym.Type, arr: arr, idx: idx}
		default:
			v, err := in.eval(fr, actual)
			if err != nil {
				return err
			}
			kind := ir.TypeReal
			if fsym != nil {
				kind = fsym.Type
			}
			cc := &cell{kind: kind}
			cc.store(v)
			cells[formal] = cc
		}
	}
	nfr, err := in.newFrame(callee, cells, arrays)
	if err != nil {
		return err
	}
	ctl, err := in.execBlock(nfr, callee.Body)
	if err != nil {
		return err
	}
	if ctl == ctlStop {
		return fmt.Errorf("interp: STOP reached in %s", c.Name)
	}
	return nil
}

// windowOf views an array's flattened storage starting at flat index
// idx as a fresh one-dimensional array (Fortran sequence association
// for array-element actuals).
func windowOf(arr *Array, idx int) *Array {
	w := &Array{Name: arr.Name, Kind: arr.Kind, Lo: []int64{1}}
	if arr.Kind == ir.TypeInteger {
		w.I = arr.I[idx:]
		w.Size = []int64{int64(len(w.I))}
	} else {
		w.F = arr.F[idx:]
		w.Size = []int64{int64(len(w.F))}
	}
	return w
}

// reshapeView aliases the actual's storage under the formal's declared
// shape, with adjustable dimensions evaluated in the callee frame.
func (in *Interp) reshapeView(fr *frame, fsym *ir.Symbol, actual *Array) *Array {
	lo := make([]int64, 0, len(fsym.Dims))
	size := make([]int64, 0, len(fsym.Dims))
	for i, d := range fsym.Dims {
		lv, err1 := in.eval(fr, d.LoOr1())
		if d.Hi == nil {
			// Assumed-size last dimension: take whatever remains.
			if i != len(fsym.Dims)-1 {
				return actual
			}
			used := int64(1)
			for _, s := range size {
				used *= s
			}
			if used == 0 {
				return actual
			}
			lo = append(lo, lv.AsInt())
			size = append(size, int64(actual.Total())/used)
			continue
		}
		hv, err2 := in.eval(fr, d.Hi)
		if err1 != nil || err2 != nil {
			return actual
		}
		lo = append(lo, lv.AsInt())
		size = append(size, hv.AsInt()-lv.AsInt()+1)
	}
	total := int64(1)
	for _, s := range size {
		total *= s
	}
	if total > int64(actual.Total()) {
		return actual // nonconforming: keep the actual's shape
	}
	return &Array{Name: fsym.Name, Kind: actual.Kind, Lo: lo, Size: size, F: actual.F, I: actual.I}
}
