package interp

import (
	"math"
	"testing"

	"polaris/internal/ir"
	"polaris/internal/machine"
	"polaris/internal/parser"
)

const histogramProgram = `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL H(16), V(800)
      INTEGER KEY(800), I
      DO I = 1, 16
        H(I) = 0.0
      END DO
      DO I = 1, 800
        KEY(I) = MOD(I * 7, 16) + 1
        V(I) = 0.01 * I
      END DO
      DO I = 1, 800
        H(KEY(I)) = H(KEY(I)) + V(I)
      END DO
      RESULT = H(1) + H(7) + H(16)
      END
`

func runHistogram(t *testing.T, style machine.ReductionStyle) (*Interp, float64) {
	t.Helper()
	prog, err := parser.ParseProgram(histogramProgram)
	if err != nil {
		t.Fatal(err)
	}
	loops := ir.OuterLoops(prog.Main().Body)
	loops[2].Par = &ir.ParInfo{
		Parallel:   true,
		Reductions: []ir.Reduction{{Target: "H", Op: "+", Histogram: true}},
	}
	in := New(prog, machine.Default().WithReductions(style))
	in.Parallel = true
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Probe("OUT", "RESULT")
	return in, v
}

// All three forms of the paper (blocked, private, expanded) must give
// identical results; their costs must order sensibly: the blocked form
// pays per update (expensive for many updates into few elements), the
// expanded form pays an extra initialization over the private form.
func TestReductionFormsSemanticsAndCosts(t *testing.T) {
	inPriv, vPriv := runHistogram(t, machine.ReductionPrivate)
	inBlk, vBlk := runHistogram(t, machine.ReductionBlocked)
	inExp, vExp := runHistogram(t, machine.ReductionExpanded)
	if math.Abs(vPriv-vBlk) > 1e-9 || math.Abs(vPriv-vExp) > 1e-9 {
		t.Fatalf("forms disagree: private=%v blocked=%v expanded=%v", vPriv, vBlk, vExp)
	}
	// 800 locked updates at 80 cycles dwarf merging 16 elements over
	// 8 processors at 60 cycles.
	if inBlk.Time() <= inPriv.Time() {
		t.Errorf("blocked (%d) not costlier than private (%d) for update-heavy histogram",
			inBlk.Time(), inPriv.Time())
	}
	if inExp.Time() <= inPriv.Time() {
		t.Errorf("expanded (%d) not costlier than private (%d)", inExp.Time(), inPriv.Time())
	}
	// All parallel variants still beat serial for this weight of loop.
	ref := New(parser.MustParse(histogramProgram), machine.Default())
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	if inPriv.Time() >= ref.Time() {
		t.Errorf("private-form histogram slower than serial: %d vs %d", inPriv.Time(), ref.Time())
	}
}

// For a scalar reduction the element count is one: private merging is
// near-free and blocked still pays per update.
func TestScalarReductionFormCosts(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL S, V(1000)
      INTEGER I
      DO I = 1, 1000
        V(I) = 0.001 * I
      END DO
      S = 0.0
      DO I = 1, 1000
        S = S + V(I)
      END DO
      RESULT = S
      END
`
	times := map[machine.ReductionStyle]int64{}
	var want float64
	for i, style := range []machine.ReductionStyle{machine.ReductionPrivate, machine.ReductionBlocked} {
		prog, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		loops := ir.OuterLoops(prog.Main().Body)
		loops[1].Par = &ir.ParInfo{Parallel: true, Reductions: []ir.Reduction{{Target: "S", Op: "+"}}}
		in := New(prog, machine.Default().WithReductions(style))
		in.Parallel = true
		if err := in.Run(); err != nil {
			t.Fatal(err)
		}
		got, _ := in.Probe("OUT", "RESULT")
		if i == 0 {
			want = got
		} else if math.Abs(got-want) > 1e-9 {
			t.Errorf("styles disagree: %v vs %v", got, want)
		}
		times[style] = in.Time()
	}
	if times[machine.ReductionBlocked] <= times[machine.ReductionPrivate] {
		t.Errorf("blocked (%d) should cost more than private (%d) for 1000 updates",
			times[machine.ReductionBlocked], times[machine.ReductionPrivate])
	}
}

func TestReductionStyleString(t *testing.T) {
	if machine.ReductionPrivate.String() != "private" ||
		machine.ReductionBlocked.String() != "blocked" ||
		machine.ReductionExpanded.String() != "expanded" {
		t.Errorf("style names wrong")
	}
}
