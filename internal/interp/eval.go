package interp

import (
	"fmt"
	"math"

	"polaris/internal/ir"
)

// eval evaluates an expression, charging cycle costs per operation.
func (in *Interp) eval(fr *frame, e ir.Expr) (Value, error) {
	switch x := e.(type) {
	case *ir.ConstInt:
		in.charge(in.Cost.Load)
		return IntVal(x.Val), nil
	case *ir.ConstReal:
		in.charge(in.Cost.Load)
		return RealVal(x.Val), nil
	case *ir.ConstLogical:
		in.charge(in.Cost.Load)
		return BoolVal(x.Val), nil
	case *ir.VarRef:
		in.charge(in.Cost.Load)
		return fr.getCell(x.Name, fr.unit).load(), nil
	case *ir.ArrayRef:
		arr, idx, err := in.element(fr, x)
		if err != nil {
			return Value{}, err
		}
		if in.shadows != nil {
			if sh := in.shadows[arr]; sh != nil {
				sh.MarkRead(idx, in.curIter)
				in.markCycles += in.Model.PDMarkCyclesPerAccess
			}
		}
		in.charge(in.Cost.Load)
		return arr.Get(idx), nil
	case *ir.Unary:
		v, err := in.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		in.charge(in.Cost.AddSub)
		switch x.Op {
		case ir.OpNeg:
			if v.Kind == ir.TypeInteger {
				return IntVal(-v.I), nil
			}
			return RealVal(-v.F), nil
		case ir.OpNot:
			return BoolVal(!v.B), nil
		}
	case *ir.Binary:
		return in.evalBinary(fr, x)
	case *ir.Call:
		return in.evalCall(fr, x)
	}
	return Value{}, fmt.Errorf("interp: unsupported expression %T", e)
}

func (in *Interp) evalBinary(fr *frame, x *ir.Binary) (Value, error) {
	l, err := in.eval(fr, x.L)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logical operators keep the cost model honest for
	// guard-heavy loops.
	if x.Op == ir.OpAnd && !l.B {
		in.charge(in.Cost.Compare)
		return BoolVal(false), nil
	}
	if x.Op == ir.OpOr && l.B {
		in.charge(in.Cost.Compare)
		return BoolVal(true), nil
	}
	r, err := in.eval(fr, x.R)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case ir.OpAnd:
		in.charge(in.Cost.Compare)
		return BoolVal(l.B && r.B), nil
	case ir.OpOr:
		in.charge(in.Cost.Compare)
		return BoolVal(l.B || r.B), nil
	}
	if x.Op.IsRelational() {
		in.charge(in.Cost.Compare)
		if l.Kind == ir.TypeInteger && r.Kind == ir.TypeInteger {
			return BoolVal(intRel(x.Op, l.I, r.I)), nil
		}
		return BoolVal(floatRel(x.Op, l.AsFloat(), r.AsFloat())), nil
	}
	bothInt := l.Kind == ir.TypeInteger && r.Kind == ir.TypeInteger
	switch x.Op {
	case ir.OpAdd:
		in.charge(in.Cost.AddSub)
		if bothInt {
			return IntVal(l.I + r.I), nil
		}
		return RealVal(l.AsFloat() + r.AsFloat()), nil
	case ir.OpSub:
		in.charge(in.Cost.AddSub)
		if bothInt {
			return IntVal(l.I - r.I), nil
		}
		return RealVal(l.AsFloat() - r.AsFloat()), nil
	case ir.OpMul:
		in.charge(in.Cost.Mul)
		if bothInt {
			return IntVal(l.I * r.I), nil
		}
		return RealVal(l.AsFloat() * r.AsFloat()), nil
	case ir.OpDiv:
		if bothInt {
			if r.I == 0 {
				return Value{}, fmt.Errorf("interp: integer division by zero")
			}
			// Division by a power of two is a shift after code
			// generation (the strength reduction every 1996 back end
			// performed).
			if r.I > 0 && r.I&(r.I-1) == 0 {
				in.charge(in.Cost.AddSub)
			} else {
				in.charge(in.Cost.Div)
			}
			return IntVal(l.I / r.I), nil
		}
		in.charge(in.Cost.Div)
		return RealVal(l.AsFloat() / r.AsFloat()), nil
	case ir.OpPow:
		if bothInt {
			// Integer powers compile to shifts (base 2) or repeated
			// multiplication.
			switch {
			case l.I == 2 && r.I >= 0:
				in.charge(in.Cost.AddSub)
			case r.I >= 0 && r.I <= 8:
				n := r.I - 1
				if n < 1 {
					n = 1
				}
				in.charge(in.Cost.Mul * n)
			default:
				in.charge(in.Cost.Pow)
			}
			return IntVal(ipow(l.I, r.I)), nil
		}
		in.charge(in.Cost.Pow)
		return RealVal(math.Pow(l.AsFloat(), r.AsFloat())), nil
	}
	return Value{}, fmt.Errorf("interp: unsupported operator %v", x.Op)
}

func intRel(op ir.BinOp, l, r int64) bool {
	switch op {
	case ir.OpEq:
		return l == r
	case ir.OpNe:
		return l != r
	case ir.OpLt:
		return l < r
	case ir.OpLe:
		return l <= r
	case ir.OpGt:
		return l > r
	case ir.OpGe:
		return l >= r
	}
	return false
}

func floatRel(op ir.BinOp, l, r float64) bool {
	switch op {
	case ir.OpEq:
		return l == r
	case ir.OpNe:
		return l != r
	case ir.OpLt:
		return l < r
	case ir.OpLe:
		return l <= r
	case ir.OpGt:
		return l > r
	case ir.OpGe:
		return l >= r
	}
	return false
}

func ipow(b, e int64) int64 {
	if e < 0 {
		if b == 1 {
			return 1
		}
		if b == -1 {
			if e%2 == 0 {
				return 1
			}
			return -1
		}
		return 0
	}
	out := int64(1)
	for i := int64(0); i < e; i++ {
		out *= b
	}
	return out
}

// evalCall evaluates intrinsics and user function calls.
func (in *Interp) evalCall(fr *frame, x *ir.Call) (Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := in.eval(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	in.charge(in.Cost.Intrinsic)
	switch x.Name {
	case "MOD":
		if len(args) != 2 {
			break
		}
		if args[0].Kind == ir.TypeInteger && args[1].Kind == ir.TypeInteger {
			if args[1].I == 0 {
				return Value{}, fmt.Errorf("interp: MOD by zero")
			}
			return IntVal(args[0].I % args[1].I), nil
		}
		return RealVal(math.Mod(args[0].AsFloat(), args[1].AsFloat())), nil
	case "MAX", "AMAX1", "MAX0":
		return reduceArgs("MAX", args), nil
	case "MIN", "AMIN1", "MIN0":
		return reduceArgs("MIN", args), nil
	case "ABS", "IABS":
		if args[0].Kind == ir.TypeInteger {
			if args[0].I < 0 {
				return IntVal(-args[0].I), nil
			}
			return args[0], nil
		}
		return RealVal(math.Abs(args[0].F)), nil
	case "SQRT":
		return RealVal(math.Sqrt(args[0].AsFloat())), nil
	case "EXP":
		return RealVal(math.Exp(args[0].AsFloat())), nil
	case "LOG":
		return RealVal(math.Log(args[0].AsFloat())), nil
	case "SIN":
		return RealVal(math.Sin(args[0].AsFloat())), nil
	case "COS":
		return RealVal(math.Cos(args[0].AsFloat())), nil
	case "TAN":
		return RealVal(math.Tan(args[0].AsFloat())), nil
	case "ATAN":
		return RealVal(math.Atan(args[0].AsFloat())), nil
	case "INT":
		return IntVal(args[0].AsInt()), nil
	case "NINT":
		return IntVal(int64(math.Round(args[0].AsFloat()))), nil
	case "FLOAT", "REAL", "DBLE":
		return RealVal(args[0].AsFloat()), nil
	case "SIGN":
		if len(args) == 2 {
			m := math.Abs(args[0].AsFloat())
			if args[1].AsFloat() < 0 {
				m = -m
			}
			return RealVal(m), nil
		}
	}
	// User function.
	if u := in.Prog.Unit(x.Name); u != nil && u.Kind == ir.UnitFunction {
		return in.callFunction(fr, u, x.Args, args)
	}
	return Value{}, fmt.Errorf("interp: unknown function %s", x.Name)
}

func reduceArgs(op string, args []Value) Value {
	out := args[0]
	for _, a := range args[1:] {
		out = combine(op, out, a)
	}
	return out
}

// callFunction invokes a user FUNCTION; its result is the value of the
// variable named after the function.
func (in *Interp) callFunction(fr *frame, u *ir.ProgramUnit, argExprs []ir.Expr, argVals []Value) (Value, error) {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > 200 {
		return Value{}, fmt.Errorf("interp: call depth limit")
	}
	in.charge(in.Cost.CallOverhead)
	cells := map[string]*cell{}
	arrays := map[string]*Array{}
	for i, formal := range u.Formals {
		fsym := u.Symbols.Lookup(formal)
		if av, isVar := argExprs[i].(*ir.VarRef); isVar {
			if arr, isArr := fr.arrays[av.Name]; isArr {
				arrays[formal] = arr
				continue
			}
			cells[formal] = fr.getCell(av.Name, fr.unit)
			continue
		}
		kind := ir.TypeReal
		if fsym != nil {
			kind = fsym.Type
		}
		cc := &cell{kind: kind}
		cc.store(argVals[i])
		cells[formal] = cc
	}
	nfr, err := in.newFrame(u, cells, arrays)
	if err != nil {
		return Value{}, err
	}
	if _, err := in.execBlock(nfr, u.Body); err != nil {
		return Value{}, err
	}
	return nfr.getCell(u.Name, u).load(), nil
}
