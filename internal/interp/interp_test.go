package interp

import (
	"math"
	"testing"

	"polaris/internal/ir"
	"polaris/internal/machine"
	"polaris/internal/parser"
)

func run(t *testing.T, src string) (*Interp, *ir.Program) {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := New(prog, machine.Default())
	if err := in.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return in, prog
}

// runAndProbe executes the program and returns the value of the COMMON
// /OUT/ scalar RESULT, the convention the tests use to observe state.
func runAndProbe(t *testing.T, src string) float64 {
	t.Helper()
	in, _ := run(t, src)
	blk := in.commons["OUT"]
	if blk == nil || blk.scalars["RESULT"] == nil {
		t.Fatalf("program has no COMMON /OUT/ RESULT")
	}
	return blk.scalars["RESULT"].load().AsFloat()
}

func TestArithmeticAndAssignment(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      INTEGER I
      I = 7
      RESULT = (I * 2 + 1) / 3
      END
`)
	// Integer arithmetic: (15)/3 = 5.
	if got != 5 {
		t.Errorf("result = %v, want 5", got)
	}
}

func TestIntegerDivisionTruncates(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      INTEGER I
      I = 7
      RESULT = I / 2
      END
`)
	if got != 3 {
		t.Errorf("7/2 = %v, want 3", got)
	}
}

func TestRealArithmetic(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT, X
      COMMON /OUT/ RESULT
      X = 7.0
      RESULT = X / 2.0 + 0.5
      END
`)
	if got != 4.0 {
		t.Errorf("result = %v, want 4", got)
	}
}

func TestLoopAndArray(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(10)
      INTEGER I
      DO I = 1, 10
        A(I) = I * 2
      END DO
      RESULT = A(10) + A(1)
      END
`)
	if got != 22 {
		t.Errorf("result = %v, want 22", got)
	}
}

func TestDoStepAndExitValue(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      INTEGER I, S
      S = 0
      DO I = 10, 2, -2
        S = S + I
      END DO
      RESULT = S + I
      END
`)
	// 10+8+6+4+2 = 30; exit value of I = 0.
	if got != 30 {
		t.Errorf("result = %v, want 30", got)
	}
}

func TestIfElseChain(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      INTEGER I
      RESULT = 0.0
      DO I = 1, 5
        IF (I .EQ. 1) THEN
          RESULT = RESULT + 1.0
        ELSE IF (MOD(I, 2) .EQ. 0) THEN
          RESULT = RESULT + 10.0
        ELSE
          RESULT = RESULT + 100.0
        END IF
      END DO
      END
`)
	// I=1:+1, I=2:+10, I=3:+100, I=4:+10, I=5:+100 = 221
	if got != 221 {
		t.Errorf("result = %v, want 221", got)
	}
}

func TestSubroutineCallByReference(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT, X(5)
      COMMON /OUT/ RESULT
      INTEGER I
      DO I = 1, 5
        X(I) = I
      END DO
      CALL DOUBLE(X, 5)
      RESULT = X(5)
      END

      SUBROUTINE DOUBLE(A, N)
      INTEGER N, I
      REAL A(N)
      DO I = 1, N
        A(I) = A(I) * 2.0
      END DO
      END
`)
	if got != 10 {
		t.Errorf("result = %v, want 10", got)
	}
}

func TestAdjustableArrayReshape(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT, X(12)
      COMMON /OUT/ RESULT
      INTEGER I
      DO I = 1, 12
        X(I) = I
      END DO
      CALL PICK(X, 3, 4)
      RESULT = X(1)
      END

      SUBROUTINE PICK(M, NR, NC)
      INTEGER NR, NC
      REAL M(NR, NC)
      M(1,1) = M(3,4)
      END
`)
	// Column-major: M(3,4) = element 3 + 2*... = flat (3-1)+(4-1)*3 = 11 -> X(12) = 12.
	if got != 12 {
		t.Errorf("result = %v, want 12", got)
	}
}

func TestArrayElementWindowActual(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT, X(10)
      COMMON /OUT/ RESULT
      INTEGER I
      DO I = 1, 10
        X(I) = 0.0
      END DO
      CALL SET(X(4), 3)
      RESULT = X(4) + X(6) + X(1)
      END

      SUBROUTINE SET(S, N)
      INTEGER N, I
      REAL S(N)
      DO I = 1, N
        S(I) = 5.0
      END DO
      END
`)
	// X(4..6) set to 5; X(1) untouched.
	if got != 10 {
		t.Errorf("result = %v, want 10", got)
	}
}

func TestFunctionCall(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      RESULT = F(3.0) + F(4.0)
      END

      REAL FUNCTION F(X)
      REAL X
      F = X * X
      END
`)
	if got != 25 {
		t.Errorf("result = %v, want 25", got)
	}
}

func TestIntrinsics(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      RESULT = SQRT(16.0) + ABS(-3.0) + MAX(1.0, 2.0, 7.0) + MIN(5, 3) + MOD(10, 3)
      END
`)
	// 4 + 3 + 7 + 3 + 1 = 18
	if got != 18 {
		t.Errorf("result = %v, want 18", got)
	}
}

func TestOutOfBoundsCaught(t *testing.T) {
	prog, err := parser.ParseProgram(`
      PROGRAM P
      REAL A(5)
      INTEGER I
      I = 9
      A(I) = 1.0
      END
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := New(prog, machine.Default())
	if err := in.Run(); err == nil {
		t.Errorf("out-of-bounds access not caught")
	}
}

func TestCyclesAccumulate(t *testing.T) {
	in, _ := run(t, `
      PROGRAM P
      REAL A(100)
      INTEGER I
      DO I = 1, 100
        A(I) = I * 2.0
      END DO
      END
`)
	if in.Work() < 1000 {
		t.Errorf("work = %d, implausibly low", in.Work())
	}
	if in.Time() != in.Work() {
		t.Errorf("serial time %d != work %d", in.Time(), in.Work())
	}
}

const doallProgram = `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(1000), B(1000), S
      INTEGER I
      DO I = 1, 1000
        B(I) = I
      END DO
      S = 0.0
      DO I = 1, 1000
        A(I) = B(I) * 2.0
        S = S + A(I)
      END DO
      RESULT = S + A(777)
      END
`

// annotateSecondLoop marks the second top-level loop parallel with the
// given clauses.
func annotateSecondLoop(t *testing.T, prog *ir.Program, par *ir.ParInfo) *ir.DoStmt {
	t.Helper()
	loops := ir.OuterLoops(prog.Main().Body)
	if len(loops) < 2 {
		t.Fatalf("want 2 loops")
	}
	loops[1].Par = par
	return loops[1]
}

func TestDoallMatchesSerial(t *testing.T) {
	for _, mode := range []string{"serial", "doall", "validate", "concurrent"} {
		prog, err := parser.ParseProgram(doallProgram)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		annotateSecondLoop(t, prog, &ir.ParInfo{
			Parallel:   true,
			Reductions: []ir.Reduction{{Target: "S", Op: "+"}},
		})
		in := New(prog, machine.Default())
		switch mode {
		case "doall":
			in.Parallel = true
		case "validate":
			in.Parallel = true
			in.Validate = true
		case "concurrent":
			in.Parallel = true
			in.Concurrent = true
		}
		if err := in.Run(); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		got := in.commons["OUT"].scalars["RESULT"].load().AsFloat()
		want := 1002554.0 // sum 2..2000 step 2 = 1001000, + A(777)=1554
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("%s: result = %v, want %v", mode, got, want)
		}
		if mode != "serial" && in.ParallelLoopExecs == 0 {
			t.Errorf("%s: loop did not execute in parallel", mode)
		}
		if mode != "serial" && in.Time() >= in.Work() {
			t.Errorf("%s: no speedup: time %d, work %d", mode, in.Time(), in.Work())
		}
	}
}

func TestDoallSpeedupScalesWithProcessors(t *testing.T) {
	times := map[int]int64{}
	for _, p := range []int{1, 2, 4, 8} {
		prog, err := parser.ParseProgram(doallProgram)
		if err != nil {
			t.Fatal(err)
		}
		annotateSecondLoop(t, prog, &ir.ParInfo{Parallel: true,
			Reductions: []ir.Reduction{{Target: "S", Op: "+"}}})
		in := New(prog, machine.Default().WithProcessors(p))
		in.Parallel = true
		if err := in.Run(); err != nil {
			t.Fatal(err)
		}
		times[p] = in.Time()
	}
	if !(times[1] > times[2] && times[2] > times[4] && times[4] > times[8]) {
		t.Errorf("times not monotone: %v", times)
	}
	// Rough shape: 8 procs at least 2x faster than 1 on this loop mix.
	if times[1] < times[8]*2 {
		t.Errorf("8-proc speedup too small: %v", times)
	}
}

func TestPrivateScalarSemantics(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(100), T
      INTEGER I
      DO I = 1, 100
        T = I * 1.0
        A(I) = T + 1.0
      END DO
      RESULT = A(50) + T
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := ir.OuterLoops(prog.Main().Body)[0]
	loop.Par = &ir.ParInfo{Parallel: true, Private: []string{"T"}, LastValue: []string{"T"}}
	in := New(prog, machine.Default())
	in.Parallel = true
	in.Validate = true // reversed order: last value must still be I=100
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	got := in.commons["OUT"].scalars["RESULT"].load().AsFloat()
	if got != 151 { // A(50)=51, T=100
		t.Errorf("result = %v, want 151", got)
	}
}

func TestPrivateArraySemantics(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL B(20,20), C(20,20), W(20)
      INTEGER I, J, K
      DO I = 1, 20
        DO J = 1, 20
          B(J,I) = J + I
        END DO
      END DO
      DO I = 1, 20
        DO J = 1, 20
          W(J) = B(J,I) * 2.0
        END DO
        DO K = 1, 20
          C(K,I) = W(K)
        END DO
      END DO
      RESULT = C(3,7)
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	loops := ir.OuterLoops(prog.Main().Body)
	loops[1].Par = &ir.ParInfo{Parallel: true, Private: []string{"J", "K"}, PrivateArrays: []string{"W"}}
	in := New(prog, machine.Default())
	in.Parallel = true
	in.Validate = true
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	got := in.commons["OUT"].scalars["RESULT"].load().AsFloat()
	if got != 20 { // (3+7)*2
		t.Errorf("result = %v, want 20", got)
	}
}

func TestLRPDPassAndFail(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(2000)
      INTEGER IND(1000), I
      DO I = 1, 1000
        IND(I) = IDXVAL(I)
      END DO
      DO I = 1, 2000
        A(I) = 0.0
      END DO
      DO I = 1, 1000
        A(IND(I)) = A(IND(I)) + SQRT(1.0*I) + COS(0.5*I)
      END DO
      RESULT = A(1) + A(2)
      END

      INTEGER FUNCTION IDXVAL(I)
      INTEGER I
      IDXVAL = 2*I - 1
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	loops := ir.OuterLoops(prog.Main().Body)
	loops[2].Par = &ir.ParInfo{LRPD: []string{"A"}}
	in := New(prog, machine.Default())
	in.Parallel = true
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.LRPDPasses != 1 || in.LRPDFailures != 0 {
		t.Errorf("disjoint gather: passes=%d failures=%d", in.LRPDPasses, in.LRPDFailures)
	}
	if in.Time() >= in.Work() {
		t.Errorf("passing LRPD gave no speedup")
	}

	// Now a colliding index function: IND has duplicates -> failure.
	src2 := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(100)
      INTEGER IND(10), I
      DO I = 1, 10
        IND(I) = 5
      END DO
      DO I = 1, 100
        A(I) = 0.0
      END DO
      DO I = 1, 10
        A(IND(I)) = A(IND(I)) + 1.0
      END DO
      RESULT = A(5)
      END
`
	prog2, err := parser.ParseProgram(src2)
	if err != nil {
		t.Fatal(err)
	}
	loops2 := ir.OuterLoops(prog2.Main().Body)
	loops2[2].Par = &ir.ParInfo{LRPD: []string{"A"}}
	in2 := New(prog2, machine.Default())
	in2.Parallel = true
	if err := in2.Run(); err != nil {
		t.Fatal(err)
	}
	if in2.LRPDFailures != 1 {
		t.Errorf("colliding gather not detected: %d failures", in2.LRPDFailures)
	}
	// Failed speculation costs time: slower than pure serial.
	if in2.Time() <= in2.Work() {
		t.Errorf("failed LRPD did not cost time: time=%d work=%d", in2.Time(), in2.Work())
	}
	// Result still correct (sequential semantics under the hood).
	got := in2.commons["OUT"].scalars["RESULT"].load().AsFloat()
	if got != 10 {
		t.Errorf("result = %v, want 10", got)
	}
}

func TestCodegenFactorScalesTime(t *testing.T) {
	prog, err := parser.ParseProgram(doallProgram)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, machine.Default().WithCodegenFactor(0.5))
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Time() != in.Work()/2 {
		t.Errorf("codegen factor not applied: time=%d work=%d", in.Time(), in.Work())
	}
}

func TestStopStatement(t *testing.T) {
	in, _ := run(t, `
      PROGRAM P
      INTEGER I
      DO I = 1, 5
        IF (I .EQ. 3) THEN
          STOP
        END IF
      END DO
      END
`)
	_ = in
}

func TestCommonSharedAcrossUnits(t *testing.T) {
	got := runAndProbe(t, `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      CALL SETTER
      END

      SUBROUTINE SETTER
      REAL RESULT
      COMMON /OUT/ RESULT
      RESULT = 42.0
      END
`)
	if got != 42 {
		t.Errorf("COMMON not shared: %v", got)
	}
}
