package interp_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"polaris/internal/interp"
	"polaris/internal/ir"
	"polaris/internal/machine"
	"polaris/internal/parser"
)

// cancelProg keeps workers busy long enough to cancel mid-loop: the
// outer loop is forced DOALL (iterations write disjoint elements, so
// concurrent execution is race-free), the inner loop makes each
// iteration expensive.
const cancelProg = `      PROGRAM SPIN
      REAL A(64)
      COMMON /OUT/ A
      INTEGER I, J
      DO I = 1, 64
        DO J = 1, 200000
          A(I) = A(I) + 0.5
        END DO
      END DO
      END
`

func parseForcedDoall(t *testing.T) *ir.Program {
	t.Helper()
	prog, err := parser.ParseProgram(cancelProg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ir.Loops(prog.Main().Body) {
		if d.Index == "I" {
			d.EnsurePar().Parallel = true
			return prog
		}
	}
	t.Fatal("outer loop not found")
	return nil
}

// TestConcurrentDoallCancellation is the regression for
// execDoallConcurrent's cancellation path: cancel mid-loop must
// surface context.Canceled promptly, and every worker goroutine must
// be gone when RunContext returns (the wg.Wait before return is the
// no-leak guarantee this test pins down).
func TestConcurrentDoallCancellation(t *testing.T) {
	prog := parseForcedDoall(t)
	in := interp.New(prog, machine.Default().WithProcessors(8))
	in.Parallel = true
	in.Concurrent = true

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.RunContext(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not return after cancellation (worker hang or leak)")
	}

	// Workers must all have exited: poll because goroutine teardown is
	// asynchronous after wg.Wait's return unblocks us.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A context canceled before Run starts must fail fast without
// spawning any workers.
func TestConcurrentDoallPreCanceled(t *testing.T) {
	prog := parseForcedDoall(t)
	in := interp.New(prog, machine.Default().WithProcessors(8))
	in.Parallel = true
	in.Concurrent = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := runtime.NumGoroutine()
	if err := in.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if g := runtime.NumGoroutine(); g > base+1 {
		t.Fatalf("goroutines spawned despite pre-canceled context: %d > %d", g, base)
	}
}
