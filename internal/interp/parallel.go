package interp

import (
	"fmt"
	"sync"

	"polaris/internal/ir"
	"polaris/internal/lrpd"
	"polaris/internal/machine"
)

// execDoall executes a DOALL-annotated loop, honouring privatization
// and reduction clauses, and charges the simulated parallel time:
// fork + max per-processor share + join + reduction merges.
func (in *Interp) execDoall(fr *frame, d *ir.DoStmt, init, step, n int64) (control, error) {
	in.ParallelLoopExecs++
	p := in.Model.Processors
	if p < 1 {
		p = 1
	}
	if in.Concurrent {
		return in.execDoallConcurrent(fr, d, init, step, n, p)
	}
	in.inDoall = true
	defer func() { in.inDoall = false }()

	par := d.Par
	if len(par.Reductions) > 0 {
		in.redTargets = map[string]bool{}
		for _, r := range par.Reductions {
			in.redTargets[r.Target] = true
		}
		in.redUpdates = 0
		in.redFrame = fr
		defer func() { in.redTargets = nil; in.redFrame = nil }()
	}
	saveScalars, saveArrays := in.saveShared(fr, par)
	chunk := (n + int64(p) - 1) / int64(p)
	perProc := make([]int64, p)
	workBefore := in.work

	order := make([]int64, n)
	for k := int64(0); k < n; k++ {
		order[k] = k
	}
	if in.Validate {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	var lastOverlay map[string]*cell
	for _, k := range order {
		overlayCells := in.freshPrivates(fr, par)
		idx := fr.getCell(d.Index, fr.unit)
		idx.store(IntVal(init + k*step))
		before := in.work
		in.charge(in.Cost.LoopIter)
		c, err := in.execBlock(fr, d.Body)
		if err != nil {
			in.restoreShared(fr, saveScalars, saveArrays, nil, par)
			return ctlNormal, err
		}
		if c != ctlNormal {
			in.restoreShared(fr, saveScalars, saveArrays, nil, par)
			return ctlNormal, fmt.Errorf("interp: control flow escaping a parallel loop")
		}
		perProc[k/chunk] += in.work - before
		if k == n-1 {
			lastOverlay = overlayCells
		}
	}
	bodyWork := in.work - workBefore
	in.restoreShared(fr, saveScalars, saveArrays, lastOverlay, par)
	fr.getCell(d.Index, fr.unit).store(IntVal(init + n*step))

	parTime := in.parallelTime(perProc, par, p, 0)
	in.saved += bodyWork - parTime
	in.parallelWork += bodyWork
	in.recordLoop(d, "doall", bodyWork, parTime)
	return ctlNormal, nil
}

// parallelTime combines per-processor shares with the machine's
// overhead terms. extra is added inside the parallel section (PD-test
// marking and analysis).
func (in *Interp) parallelTime(perProc []int64, par *ir.ParInfo, p int, extra int64) int64 {
	maxShare := int64(0)
	for _, w := range perProc {
		if w > maxShare {
			maxShare = w
		}
	}
	t := in.Model.ForkCycles + maxShare + in.Model.JoinCycles + extra
	if par != nil {
		t += in.reductionOverhead(par, p)
		t += int64(len(par.PrivateArrays)) * int64(p) * in.Model.PrivateInitCycles
	}
	return t
}

// reductionOverhead models the paper's three reduction forms. The
// element count per reduction comes from the accumulator's storage
// (1 for scalars, the array length for histogram targets); the blocked
// form instead charges a lock premium per update, counted during
// execution (redUpdates).
func (in *Interp) reductionOverhead(par *ir.ParInfo, p int) int64 {
	if len(par.Reductions) == 0 {
		return 0
	}
	switch in.Model.Reductions {
	case machine.ReductionBlocked:
		// Serialized updates: the premium lands on the critical path
		// (worst case: all updates contend).
		return in.redUpdates * in.Model.ReductionLockCycles
	case machine.ReductionExpanded:
		// Initialization sweep of the expanded dimension plus merge.
		return 2 * in.redElements(par) * int64(p) * in.Model.ReductionMergeCycles
	default: // private
		return in.redElements(par) * int64(p) * in.Model.ReductionMergeCycles
	}
}

// redElements sums accumulator sizes over the loop's reductions, using
// the executing frame captured at DOALL entry.
func (in *Interp) redElements(par *ir.ParInfo) int64 {
	total := int64(0)
	for _, r := range par.Reductions {
		n := int64(1)
		if in.redFrame != nil {
			if arr := in.redFrame.arrays[r.Target]; arr != nil {
				n = int64(arr.Total())
			}
		}
		total += n
	}
	return total
}

// saveShared snapshots the cells and arrays that privatization will
// shadow, so they can be restored after the loop (private copies are
// discarded; Fortran leaves shared versions untouched).
func (in *Interp) saveShared(fr *frame, par *ir.ParInfo) (map[string]*cell, map[string]*Array) {
	cells := map[string]*cell{}
	arrays := map[string]*Array{}
	if par == nil {
		return cells, arrays
	}
	for _, name := range par.Private {
		cells[name] = fr.getCell(name, fr.unit)
	}
	for _, name := range par.PrivateArrays {
		arrays[name] = fr.arrays[name]
	}
	return cells, arrays
}

// freshPrivates installs fresh private cells/arrays for one iteration
// and returns the new cells (for last-value copy-out).
func (in *Interp) freshPrivates(fr *frame, par *ir.ParInfo) map[string]*cell {
	if par == nil {
		return nil
	}
	out := map[string]*cell{}
	for _, name := range par.Private {
		kind := ir.ImplicitType(name)
		if sym := fr.unit.Symbols.Lookup(name); sym != nil {
			kind = sym.Type
		}
		c := &cell{kind: kind}
		fr.scalars[name] = c
		out[name] = c
	}
	for _, name := range par.PrivateArrays {
		if orig := fr.arrays[name]; orig != nil {
			fr.arrays[name] = NewArray(orig.Name, orig.Kind, orig.Lo, orig.Size)
		}
	}
	return out
}

// restoreShared puts the shared versions back and applies last-value
// semantics from the final iteration's overlay.
func (in *Interp) restoreShared(fr *frame, cells map[string]*cell, arrays map[string]*Array, lastOverlay map[string]*cell, par *ir.ParInfo) {
	for name, c := range cells {
		fr.scalars[name] = c
	}
	for name, a := range arrays {
		fr.arrays[name] = a
	}
	if par == nil || lastOverlay == nil {
		return
	}
	for _, name := range par.LastValue {
		if src, ok := lastOverlay[name]; ok {
			fr.getCell(name, fr.unit).store(src.load())
		}
	}
}

// execDoallConcurrent runs the loop on real goroutines: block
// partitioning, per-worker private overlays, per-worker reduction
// partials merged at the join. The cycle model still supplies timing;
// goroutines validate order-independence (and surface data races under
// -race when an annotation is wrong).
func (in *Interp) execDoallConcurrent(fr *frame, d *ir.DoStmt, init, step, n int64, p int) (control, error) {
	par := d.Par
	chunk := (n + int64(p) - 1) / int64(p)
	type redKey struct {
		name string
		op   string
	}
	// Identify reduction targets.
	redOps := map[string]string{}
	if par != nil {
		for _, r := range par.Reductions {
			redOps[r.Target] = r.Op
		}
	}
	workers := make([]*Interp, p)
	frames := make([]*frame, p)
	partialScalars := make([]map[redKey]*cell, p)
	partialArrays := make([]map[redKey]*Array, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo := int64(w) * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		// Worker-local interpreter: shares program, model, commons;
		// private cycle counters.
		// ctx is propagated so workers honor cancellation; each worker
		// owns its poll counter, so polling never races.
		wi := &Interp{Prog: in.Prog, Model: in.Model, Cost: in.Cost, commons: in.commons, inDoall: true, ctx: in.ctx}
		wfr := &frame{unit: fr.unit, scalars: map[string]*cell{}, arrays: map[string]*Array{}}
		for name, c := range fr.scalars {
			wfr.scalars[name] = c
		}
		for name, a := range fr.arrays {
			wfr.arrays[name] = a
		}
		// Private overlays (one per worker; privatizability guarantees
		// def-before-use per iteration, so per-worker reuse is safe).
		if par != nil {
			for _, name := range par.Private {
				kind := ir.ImplicitType(name)
				if sym := fr.unit.Symbols.Lookup(name); sym != nil {
					kind = sym.Type
				}
				wfr.scalars[name] = &cell{kind: kind}
			}
			for _, name := range par.PrivateArrays {
				if orig := fr.arrays[name]; orig != nil {
					wfr.arrays[name] = NewArray(orig.Name, orig.Kind, orig.Lo, orig.Size)
				}
			}
		}
		// Reduction partials.
		ps := map[redKey]*cell{}
		pa := map[redKey]*Array{}
		for name, op := range redOps {
			if orig, isArr := fr.arrays[name]; isArr {
				cp := NewArray(orig.Name, orig.Kind, orig.Lo, orig.Size)
				cp.Fill(reductionIdentity(op, orig.Kind))
				wfr.arrays[name] = cp
				pa[redKey{name, op}] = cp
				continue
			}
			kind := ir.ImplicitType(name)
			if sym := fr.unit.Symbols.Lookup(name); sym != nil {
				kind = sym.Type
			}
			c := &cell{kind: kind}
			c.store(reductionIdentity(op, kind))
			wfr.scalars[name] = c
			ps[redKey{name, op}] = c
		}
		// Private loop index.
		wfr.scalars[d.Index] = &cell{kind: ir.TypeInteger}
		workers[w], frames[w] = wi, wfr
		partialScalars[w], partialArrays[w] = ps, pa
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			wi := workers[w]
			wfr := frames[w]
			idx := wfr.scalars[d.Index]
			for k := lo; k < hi; k++ {
				idx.store(IntVal(init + k*step))
				wi.charge(wi.Cost.LoopIter)
				c, err := wi.execBlock(wfr, d.Body)
				if err != nil {
					errs[w] = err
					return
				}
				if c != ctlNormal {
					errs[w] = fmt.Errorf("interp: control flow escaping a parallel loop")
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	perProc := make([]int64, p)
	bodyWork := int64(0)
	for w := 0; w < p; w++ {
		if errs[w] != nil {
			return ctlNormal, errs[w]
		}
		if workers[w] == nil {
			continue
		}
		perProc[w] = workers[w].work
		bodyWork += workers[w].work
	}
	// Merge reduction partials (deterministic worker order).
	for w := 0; w < p; w++ {
		if workers[w] == nil {
			continue
		}
		for key, c := range partialScalars[w] {
			shared := fr.getCell(key.name, fr.unit)
			shared.store(combine(key.op, shared.load(), c.load()))
		}
		for key, cp := range partialArrays[w] {
			shared := fr.arrays[key.name]
			for i := 0; i < shared.Total(); i++ {
				shared.Set(i, combine(key.op, shared.Get(i), cp.Get(i)))
			}
		}
	}
	// Last values: the worker owning the final iteration.
	if par != nil && len(par.LastValue) > 0 {
		lastW := int((n - 1) / chunk)
		if frames[lastW] != nil {
			for _, name := range par.LastValue {
				fr.getCell(name, fr.unit).store(frames[lastW].scalars[name].load())
			}
		}
	}
	fr.getCell(d.Index, fr.unit).store(IntVal(init + n*step))
	in.work += bodyWork
	in.ParallelLoopExecs++
	parTime := in.parallelTime(perProc, par, p, 0)
	in.saved += bodyWork - parTime
	in.parallelWork += bodyWork
	in.recordLoop(d, "doall", bodyWork, parTime)
	return ctlNormal, nil
}

// execLRPD speculatively executes the loop as a DOALL under the PD
// test. Execution is sequential under the hood (so program state is
// always the sequential result); the shadow analysis decides whether
// the parallel time or the failed-speculation penalty is charged — the
// accounting of Section 3.5.3 and Figure 6.
func (in *Interp) execLRPD(fr *frame, d *ir.DoStmt, init, step, n int64) (control, error) {
	par := d.Par
	in.inDoall = true
	defer func() { in.inDoall = false }()

	// Instrument the arrays under test and checkpoint them (cost of
	// saving state for possible restoration).
	shadows := map[*Array]*lrpd.Shadow{}
	backupCost := int64(0)
	totalElems := int64(0)
	for _, name := range par.LRPD {
		arr := fr.arrays[name]
		if arr == nil {
			continue
		}
		shadows[arr] = lrpd.NewShadow(arr.Total())
		backupCost += int64(arr.Total()) * in.Model.BackupCyclesPerElement
		totalElems += int64(arr.Total())
	}
	in.shadows = shadows
	in.markCycles = 0
	defer func() { in.shadows = nil }()

	p := in.Model.Processors
	chunk := (n + int64(p) - 1) / int64(p)
	perProc := make([]int64, p)
	workBefore := in.work
	idx := fr.getCell(d.Index, fr.unit)
	for k := int64(0); k < n; k++ {
		in.curIter = k + 1
		idx.store(IntVal(init + k*step))
		before := in.work
		in.charge(in.Cost.LoopIter)
		c, err := in.execBlock(fr, d.Body)
		if err != nil {
			return ctlNormal, err
		}
		if c != ctlNormal {
			return ctlNormal, fmt.Errorf("interp: control flow escaping a speculative loop")
		}
		perProc[k/chunk] += in.work - before
	}
	in.curIter = 0
	idx.store(IntVal(init + n*step))
	bodyWork := in.work - workBefore

	// Post-execution analysis: O(a/p + log p).
	pass := true
	accesses := int64(0)
	for _, sh := range shadows {
		r := sh.Analyze()
		accesses += sh.Accesses()
		if !r.Pass {
			pass = false
		}
	}
	analysisCost := totalElems*in.Model.PDAnalysisPerElement/int64(p) +
		in.Model.PDAnalysisLogTerm*machine.Log2(p)
	markShare := (in.markCycles + int64(p) - 1) / int64(p)
	_ = accesses
	specTime := backupCost + in.parallelTime(perProc, par, p, analysisCost+markShare)

	in.LRPDBodyWork += bodyWork
	if pass {
		in.LRPDPasses++
		in.LRPDTime += specTime
		in.saved += bodyWork - specTime
		in.parallelWork += bodyWork
		in.recordLoop(d, "lrpd", bodyWork, specTime).PDPasses++
		return ctlNormal, nil
	}
	// Failed speculation: restore (already consistent — execution was
	// sequential) and re-execute serially. The sequential work is
	// already counted; the wasted parallel attempt is added on top:
	// T = T_pdt + T_seq, the paper's potential-slowdown accounting.
	in.LRPDFailures++
	in.LRPDTime += specTime + bodyWork
	in.saved -= specTime
	in.recordLoop(d, "lrpd", bodyWork, specTime+bodyWork).PDFailures++
	return ctlNormal, nil
}
