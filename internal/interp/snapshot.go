package interp

import "sort"

// CommonState snapshots every COMMON-block variable after execution as
// "BLOCK.NAME" -> values (scalars become one-element slices, arrays
// their flattened contents as float64). The differential oracle uses
// this to compare final memory states across execution modes; programs
// under test keep their observable state in COMMON, which is also the
// storage the suite's Probe convention reads.
func (in *Interp) CommonState() map[string][]float64 {
	out := map[string][]float64{}
	blocks := make([]string, 0, len(in.commons))
	for name := range in.commons {
		blocks = append(blocks, name)
	}
	sort.Strings(blocks)
	for _, bname := range blocks {
		blk := in.commons[bname]
		for sname, c := range blk.scalars {
			out[bname+"."+sname] = []float64{c.load().AsFloat()}
		}
		for aname, a := range blk.arrays {
			vals := make([]float64, a.Total())
			for i := range vals {
				vals[i] = a.Get(i).AsFloat()
			}
			out[bname+"."+aname] = vals
		}
	}
	return out
}
