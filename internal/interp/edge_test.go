package interp

import (
	"math"
	"testing"

	"polaris/internal/ir"
	"polaris/internal/machine"
	"polaris/internal/parser"
)

func probeOf(t *testing.T, in *Interp) float64 {
	t.Helper()
	v, ok := in.Probe("OUT", "RESULT")
	if !ok {
		t.Fatalf("no COMMON /OUT/ RESULT")
	}
	return v
}

func TestNegativeStepDoall(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(50)
      INTEGER I
      DO I = 50, 1, -1
        A(I) = 1.0 * I
      END DO
      RESULT = A(1) + A(50)
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := ir.OuterLoops(prog.Main().Body)[0]
	loop.Par = &ir.ParInfo{Parallel: true}
	in := New(prog, machine.Default())
	in.Parallel = true
	in.Validate = true
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if got := probeOf(t, in); got != 51 {
		t.Errorf("result = %v, want 51", got)
	}
}

func TestFunctionCallInsideDoall(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(100)
      INTEGER I
      DO I = 1, 100
        A(I) = SQ(1.0 * I)
      END DO
      RESULT = A(10)
      END

      REAL FUNCTION SQ(X)
      REAL X
      SQ = X * X
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := ir.OuterLoops(prog.Main().Body)[0]
	loop.Par = &ir.ParInfo{Parallel: true}
	in := New(prog, machine.Default())
	in.Parallel = true
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if got := probeOf(t, in); got != 100 {
		t.Errorf("result = %v, want 100", got)
	}
}

func TestLRPDMultipleArrays(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(100), B(100)
      INTEGER IND(50), I
      DO I = 1, 50
        IND(I) = 2*I
      END DO
      DO I = 1, 100
        A(I) = 1.0
        B(I) = 2.0
      END DO
      DO I = 1, 50
        A(IND(I)) = A(IND(I)) + 0.5
        B(IND(I)) = B(IND(I)) * 1.5
      END DO
      RESULT = A(2) + B(4)
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	loops := ir.OuterLoops(prog.Main().Body)
	loops[2].Par = &ir.ParInfo{LRPD: []string{"A", "B"}}
	in := New(prog, machine.Default())
	in.Parallel = true
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.LRPDPasses != 1 {
		t.Errorf("passes = %d", in.LRPDPasses)
	}
	if got := probeOf(t, in); got != 1.5+3.0 {
		t.Errorf("result = %v, want 4.5", got)
	}
}

func TestMoreIntrinsics(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL X
      X = EXP(0.0) + LOG(1.0) + SIN(0.0) + COS(0.0) + ATAN(0.0) + TAN(0.0)
      RESULT = X + NINT(2.6) + INT(3.9) + FLOAT(4) + SIGN(5.0, -1.0) + IABS(-6)
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, machine.Default())
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	// X = 1+0+0+1+0+0 = 2; + 3 + 3 + 4 - 5 + 6 = 13.
	if got := probeOf(t, in); got != 13 {
		t.Errorf("result = %v, want 13", got)
	}
}

func TestMixedTypePromotion(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      INTEGER I
      REAL X
      I = 7
      X = I / 2 + I / 2.0
      RESULT = X
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, machine.Default())
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	// I/2 integer = 3; I/2.0 real = 3.5.
	if got := probeOf(t, in); got != 6.5 {
		t.Errorf("result = %v, want 6.5", got)
	}
}

func TestPowSemantics(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      INTEGER K
      K = 2
      RESULT = K**10 + 2.0**0.5
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, machine.Default())
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	want := 1024 + math.Sqrt2
	if got := probeOf(t, in); math.Abs(got-want) > 1e-12 {
		t.Errorf("result = %v, want %v", got, want)
	}
}

func TestConcurrentLastValueAndHistogram(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL H(5), T
      INTEGER KEY(40), I
      DO I = 1, 5
        H(I) = 0.0
      END DO
      DO I = 1, 40
        KEY(I) = MOD(I, 5) + 1
      END DO
      DO I = 1, 40
        T = 0.5 * I
        H(KEY(I)) = H(KEY(I)) + T
      END DO
      RESULT = H(1) + H(2) + H(3) + H(4) + H(5) + T
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	loops := ir.OuterLoops(prog.Main().Body)
	loops[2].Par = &ir.ParInfo{
		Parallel:   true,
		Private:    []string{"T"},
		LastValue:  []string{"T"},
		Reductions: []ir.Reduction{{Target: "H", Op: "+", Histogram: true}},
	}
	// Serial reference first.
	ref := New(parser.MustParse(src), machine.Default())
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := probeOf(t, ref)

	in := New(prog, machine.Default().WithProcessors(4))
	in.Parallel = true
	in.Concurrent = true
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if got := probeOf(t, in); math.Abs(got-want) > 1e-9 {
		t.Errorf("concurrent result = %v, want %v", got, want)
	}
}

func TestControlFlowEscapeRejected(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(10)
      INTEGER I
      DO I = 1, 10
        A(I) = 1.0
        IF (I .EQ. 5) THEN
          RETURN
        END IF
      END DO
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := ir.OuterLoops(prog.Main().Body)[0]
	loop.Par = &ir.ParInfo{Parallel: true}
	in := New(prog, machine.Default())
	in.Parallel = true
	if err := in.Run(); err == nil {
		t.Errorf("RETURN escaping a DOALL was not rejected")
	}
}

func TestWorkAndTimeMonotone(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(1000)
      INTEGER I
      DO I = 1, 1000
        A(I) = SQRT(1.0 * I)
      END DO
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := ir.OuterLoops(prog.Main().Body)[0]
	loop.Par = &ir.ParInfo{Parallel: true}
	var prev int64 = 1 << 62
	for _, p := range []int{1, 2, 4, 8, 16} {
		in := New(prog, machine.Default().WithProcessors(p))
		in.Parallel = true
		if err := in.Run(); err != nil {
			t.Fatal(err)
		}
		if in.Time() > prev {
			t.Errorf("time increased with processors at p=%d", p)
		}
		prev = in.Time()
		if p == 1 && in.Time() < in.Work() {
			t.Errorf("p=1 time (%d) below work (%d): a 1-processor DOALL cannot beat serial", in.Time(), in.Work())
		}
	}
}

// A parallel loop inside a subroutine called from a serial caller loop
// must still execute as a DOALL (the inDoall guard only applies inside
// an active parallel region).
func TestParallelLoopInCalleeExecutes(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(200)
      INTEGER STEP, I
      DO I = 1, 200
        A(I) = 0.0
      END DO
      DO STEP = 1, 3
        CALL SWEEP(A)
      END DO
      RESULT = A(100)
      END

      SUBROUTINE SWEEP(A)
      REAL A(200)
      INTEGER I
      DO I = 1, 200
        A(I) = A(I) + 1.0
      END DO
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	sweep := prog.Unit("SWEEP")
	ir.OuterLoops(sweep.Body)[0].Par = &ir.ParInfo{Parallel: true}
	in := New(prog, machine.Default())
	in.Parallel = true
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.ParallelLoopExecs != 3 {
		t.Errorf("parallel execs = %d, want 3", in.ParallelLoopExecs)
	}
	if got := probeOf(t, in); got != 3 {
		t.Errorf("result = %v, want 3", got)
	}
}

// Conversely, a parallel loop in a callee invoked from inside an active
// DOALL must run serially (nested parallelism is suppressed).
func TestNestedParallelSuppressedAcrossCall(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(40,40)
      INTEGER K, J
      DO K = 1, 40
        DO J = 1, 40
          A(J,K) = 0.0
        END DO
      END DO
      DO K = 1, 40
        CALL ROW(A, K)
      END DO
      RESULT = A(3,7)
      END

      SUBROUTINE ROW(A, K)
      REAL A(40,40)
      INTEGER K, J
      DO J = 1, 40
        A(J,K) = K + 0.5 * J
      END DO
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := ir.OuterLoops(prog.Main().Body)[1]
	outer.Par = &ir.ParInfo{Parallel: true}
	ir.OuterLoops(prog.Unit("ROW").Body)[0].Par = &ir.ParInfo{Parallel: true}
	in := New(prog, machine.Default())
	in.Parallel = true
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	// Only the outer K loop runs as DOALL: one parallel execution.
	if in.ParallelLoopExecs != 1 {
		t.Errorf("parallel execs = %d, want 1 (nested suppressed)", in.ParallelLoopExecs)
	}
	if got := probeOf(t, in); got != 8.5 {
		t.Errorf("result = %v, want 8.5", got)
	}
}

func TestCommonArraysSharedAndProbed(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL GRID(10)
      COMMON /STATE/ GRID
      CALL FILL
      RESULT = GRID(4)
      END

      SUBROUTINE FILL
      REAL GRID(10)
      COMMON /STATE/ GRID
      INTEGER I
      DO I = 1, 10
        GRID(I) = 3.0 * I
      END DO
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, machine.Default())
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if got := probeOf(t, in); got != 12 {
		t.Errorf("COMMON array not shared: %v", got)
	}
	data, ok := in.ProbeArray("STATE", "GRID")
	if !ok || len(data) != 10 || data[0] != 3 || data[9] != 30 {
		t.Errorf("ProbeArray = %v, %v", data, ok)
	}
	if _, ok := in.ProbeArray("NOPE", "GRID"); ok {
		t.Errorf("ProbeArray found absent block")
	}
	if _, ok := in.ProbeArray("STATE", "NOPE"); ok {
		t.Errorf("ProbeArray found absent array")
	}
}

func TestAssumedSizeFormalReshape(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL X(24)
      INTEGER I
      DO I = 1, 24
        X(I) = 1.0 * I
      END DO
      CALL LAST(X, 4)
      RESULT = X(24)
      END

      SUBROUTINE LAST(M, NR)
      INTEGER NR
      REAL M(NR, *)
      M(4, 6) = -5.0
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, machine.Default())
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	// M(4,6) with NR=4 -> flat (4-1) + (6-1)*4 = 23 -> X(24).
	if got := probeOf(t, in); got != -5 {
		t.Errorf("assumed-size reshape wrong: %v", got)
	}
}

func TestIntegerArrayWindow(t *testing.T) {
	src := `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      INTEGER IDX(20), I
      DO I = 1, 20
        IDX(I) = 0
      END DO
      CALL MARK(IDX(11), 5)
      RESULT = IDX(11) + IDX(15) + IDX(10)
      END

      SUBROUTINE MARK(W, N)
      INTEGER N, I, W(N)
      DO I = 1, N
        W(I) = 1
      END DO
      END
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, machine.Default())
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if got := probeOf(t, in); got != 2 {
		t.Errorf("integer window wrong: %v", got)
	}
}
