package ir

// WalkStmts calls fn for every statement in the block tree, pre-order.
// If fn returns false, the statement's nested blocks are skipped.
func WalkStmts(b *Block, fn func(Stmt) bool) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		if !fn(s) {
			continue
		}
		switch x := s.(type) {
		case *DoStmt:
			WalkStmts(x.Body, fn)
		case *IfStmt:
			WalkStmts(x.Then, fn)
			WalkStmts(x.Else, fn)
		}
	}
}

// Loops returns every DO statement in the block tree, outermost first.
func Loops(b *Block) []*DoStmt {
	var out []*DoStmt
	WalkStmts(b, func(s Stmt) bool {
		if d, ok := s.(*DoStmt); ok {
			out = append(out, d)
		}
		return true
	})
	return out
}

// OuterLoops returns the top-level DO statements of the block (loops not
// nested in another loop, though possibly under IFs).
func OuterLoops(b *Block) []*DoStmt {
	var out []*DoStmt
	var walk func(*Block)
	walk = func(blk *Block) {
		if blk == nil {
			return
		}
		for _, s := range blk.Stmts {
			switch x := s.(type) {
			case *DoStmt:
				out = append(out, x)
			case *IfStmt:
				walk(x.Then)
				walk(x.Else)
			}
		}
	}
	walk(b)
	return out
}

// InnerLoops returns the DO statements directly nested in d (not within
// deeper loops).
func InnerLoops(d *DoStmt) []*DoStmt { return OuterLoops(d.Body) }

// NestOf returns the perfect-or-imperfect loop nest rooted at d:
// d followed by the chain of loops nested inside it, outermost first
// (at each level, all loops at that level are included breadth-first).
func NestOf(d *DoStmt) []*DoStmt {
	out := []*DoStmt{d}
	frontier := []*DoStmt{d}
	for len(frontier) > 0 {
		var next []*DoStmt
		for _, l := range frontier {
			inner := InnerLoops(l)
			out = append(out, inner...)
			next = append(next, inner...)
		}
		frontier = next
	}
	return out
}

// StmtExprs returns the expressions directly held by s (not those of
// nested statements): assignment sides, loop bounds, conditions, call
// arguments. Mutating the returned expressions mutates the statement.
func StmtExprs(s Stmt) []Expr {
	switch x := s.(type) {
	case *AssignStmt:
		return []Expr{x.LHS, x.RHS}
	case *DoStmt:
		out := []Expr{x.Init, x.Limit}
		if x.Step != nil {
			out = append(out, x.Step)
		}
		return out
	case *IfStmt:
		return []Expr{x.Cond}
	case *CallStmt:
		return x.Args
	}
	return nil
}

// WalkStmtExprs calls fn for every expression node reachable from every
// statement in the block tree, including nested statements.
func WalkStmtExprs(b *Block, fn func(Expr) bool) {
	WalkStmts(b, func(s Stmt) bool {
		for _, e := range StmtExprs(s) {
			WalkExpr(e, fn)
		}
		return true
	})
}

// MapStmtExprs rewrites every expression of every statement in the block
// tree using MapExpr with fn.
func MapStmtExprs(b *Block, fn func(Expr) Expr) {
	WalkStmts(b, func(s Stmt) bool {
		switch x := s.(type) {
		case *AssignStmt:
			x.LHS = MapExpr(x.LHS, fn)
			x.RHS = MapExpr(x.RHS, fn)
		case *DoStmt:
			x.Init = MapExpr(x.Init, fn)
			x.Limit = MapExpr(x.Limit, fn)
			if x.Step != nil {
				x.Step = MapExpr(x.Step, fn)
			}
		case *IfStmt:
			x.Cond = MapExpr(x.Cond, fn)
		case *CallStmt:
			for i, a := range x.Args {
				x.Args[i] = MapExpr(a, fn)
			}
		}
		return true
	})
}

// ReferencesVar reports whether any statement in the block tree
// references name (scalar or array).
func ReferencesVar(b *Block, name string) bool {
	found := false
	WalkStmtExprs(b, func(e Expr) bool {
		switch x := e.(type) {
		case *VarRef:
			if x.Name == name {
				found = true
			}
		case *ArrayRef:
			if x.Name == name {
				found = true
			}
		}
		return !found
	})
	if found {
		return true
	}
	// DO indices are references too.
	WalkStmts(b, func(s Stmt) bool {
		if d, ok := s.(*DoStmt); ok && d.Index == name {
			found = true
		}
		return !found
	})
	return found
}

// Assignments returns every assignment statement in the block tree in
// source order.
func Assignments(b *Block) []*AssignStmt {
	var out []*AssignStmt
	WalkStmts(b, func(s Stmt) bool {
		if a, ok := s.(*AssignStmt); ok {
			out = append(out, a)
		}
		return true
	})
	return out
}

// CountStmts returns the number of statements in the block tree.
func CountStmts(b *Block) int {
	n := 0
	WalkStmts(b, func(Stmt) bool { n++; return true })
	return n
}

// EnclosingLoops returns the chain of DO loops (outermost first) that
// enclose target within the block tree rooted at b. It returns nil if
// target is not found. The target itself is not included.
func EnclosingLoops(b *Block, target Stmt) []*DoStmt {
	var path []*DoStmt
	var found []*DoStmt
	var walk func(*Block) bool
	walk = func(blk *Block) bool {
		if blk == nil {
			return false
		}
		for _, s := range blk.Stmts {
			if s == target {
				found = append([]*DoStmt(nil), path...)
				return true
			}
			switch x := s.(type) {
			case *DoStmt:
				path = append(path, x)
				if walk(x.Body) {
					return true
				}
				path = path[:len(path)-1]
			case *IfStmt:
				if walk(x.Then) || walk(x.Else) {
					return true
				}
			}
		}
		return false
	}
	if !walk(b) {
		return nil
	}
	return found
}

// ContainsStmt reports whether target occurs in the block tree.
func ContainsStmt(b *Block, target Stmt) bool {
	found := false
	WalkStmts(b, func(s Stmt) bool {
		if s == target {
			found = true
		}
		return !found
	})
	return found
}
