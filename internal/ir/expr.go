// Package ir implements the Polaris internal representation: an abstract
// syntax tree for a Fortran 77 subset together with the high-level,
// consistency-checked operations the Polaris paper describes in Section 2
// (programs, program units, statement lists, expressions, symbols and
// symbol tables, structural equality, pattern wildcards, and Fortran
// source printing).
package ir

import (
	"fmt"
	"strings"
)

// BinOp enumerates binary operators of the Fortran subset.
type BinOp int

// Binary operators. Arithmetic operators come first, then relational,
// then logical, mirroring Fortran precedence classes.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpPow
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the Fortran spelling of the operator.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpPow:
		return "**"
	case OpEq:
		return ".EQ."
	case OpNe:
		return ".NE."
	case OpLt:
		return ".LT."
	case OpLe:
		return ".LE."
	case OpGt:
		return ".GT."
	case OpGe:
		return ".GE."
	case OpAnd:
		return ".AND."
	case OpOr:
		return ".OR."
	}
	return "?"
}

// IsRelational reports whether op compares two arithmetic values.
func (op BinOp) IsRelational() bool { return op >= OpEq && op <= OpGe }

// IsLogical reports whether op combines two logical values.
func (op BinOp) IsLogical() bool { return op == OpAnd || op == OpOr }

// IsArith reports whether op is an arithmetic operator.
func (op BinOp) IsArith() bool { return op <= OpPow }

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota // arithmetic negation
	OpNot             // logical .NOT.
)

// Expr is a node in an expression tree. Expression trees are never
// shared between two statements; Clone must be used to duplicate them
// (the IR consistency checker flags aliased structure, as Polaris did).
type Expr interface {
	// String renders the expression as Fortran source.
	String() string
	// Clone returns a deep copy of the expression.
	Clone() Expr
	exprNode()
}

// ConstInt is an integer literal.
type ConstInt struct {
	Val int64
}

// ConstReal is a floating-point literal.
type ConstReal struct {
	Val float64
}

// ConstLogical is a .TRUE./.FALSE. literal.
type ConstLogical struct {
	Val bool
}

// VarRef is a reference to a scalar variable (or to a whole array when
// used as an actual argument).
type VarRef struct {
	Name string
}

// ArrayRef is a subscripted array reference A(s1, ..., sn).
type ArrayRef struct {
	Name string
	Subs []Expr
}

// Binary is a binary operation L op R.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Unary is a unary operation op X.
type Unary struct {
	Op UnOp
	X  Expr
}

// Call is an intrinsic or user function call in an expression context.
type Call struct {
	Name string
	Args []Expr
}

// Wildcard is a pattern-matching placeholder (the Polaris Wildcard
// class underlying "Forbol"). It matches any subexpression, optionally
// filtered by Pred, and records the binding under its ID.
type Wildcard struct {
	ID   string
	Pred func(Expr) bool
}

func (*ConstInt) exprNode()     {}
func (*ConstReal) exprNode()    {}
func (*ConstLogical) exprNode() {}
func (*VarRef) exprNode()       {}
func (*ArrayRef) exprNode()     {}
func (*Binary) exprNode()       {}
func (*Unary) exprNode()        {}
func (*Call) exprNode()         {}
func (*Wildcard) exprNode()     {}

// Clone implementations (deep copies).

// Clone returns a copy of the literal.
func (e *ConstInt) Clone() Expr { c := *e; return &c }

// Clone returns a copy of the literal.
func (e *ConstReal) Clone() Expr { c := *e; return &c }

// Clone returns a copy of the literal.
func (e *ConstLogical) Clone() Expr { c := *e; return &c }

// Clone returns a copy of the reference.
func (e *VarRef) Clone() Expr { c := *e; return &c }

// Clone returns a deep copy of the array reference.
func (e *ArrayRef) Clone() Expr {
	c := &ArrayRef{Name: e.Name, Subs: make([]Expr, len(e.Subs))}
	for i, s := range e.Subs {
		c.Subs[i] = s.Clone()
	}
	return c
}

// Clone returns a deep copy of the operation.
func (e *Binary) Clone() Expr { return &Binary{Op: e.Op, L: e.L.Clone(), R: e.R.Clone()} }

// Clone returns a deep copy of the operation.
func (e *Unary) Clone() Expr { return &Unary{Op: e.Op, X: e.X.Clone()} }

// Clone returns a deep copy of the call.
func (e *Call) Clone() Expr {
	c := &Call{Name: e.Name, Args: make([]Expr, len(e.Args))}
	for i, a := range e.Args {
		c.Args[i] = a.Clone()
	}
	return c
}

// Clone returns a copy of the wildcard (the predicate is shared).
func (e *Wildcard) Clone() Expr { c := *e; return &c }

// String renderers. Parenthesization is conservative: nested binary
// operands are parenthesized whenever precedence could be ambiguous.

func (e *ConstInt) String() string { return fmt.Sprintf("%d", e.Val) }

func (e *ConstReal) String() string {
	s := fmt.Sprintf("%g", e.Val)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func (e *ConstLogical) String() string {
	if e.Val {
		return ".TRUE."
	}
	return ".FALSE."
}

func (e *VarRef) String() string { return e.Name }

func (e *ArrayRef) String() string {
	parts := make([]string, len(e.Subs))
	for i, s := range e.Subs {
		parts[i] = s.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

func precedence(op BinOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub:
		return 4
	case OpMul, OpDiv:
		return 5
	case OpPow:
		return 6
	}
	return 0
}

func renderOperand(e Expr, parentPrec int, right bool) string {
	if b, ok := e.(*Binary); ok {
		p := precedence(b.Op)
		if p < parentPrec || (p == parentPrec && right) {
			return "(" + e.String() + ")"
		}
		return e.String()
	}
	if u, ok := e.(*Unary); ok && u.Op == OpNeg && parentPrec >= 4 {
		return "(" + e.String() + ")"
	}
	return e.String()
}

func (e *Binary) String() string {
	p := precedence(e.Op)
	if e.Op == OpPow {
		// ** is right-associative: parenthesize an equal-precedence
		// left operand, not the right one.
		return renderOperand(e.L, p, true) + e.Op.String() + renderOperand(e.R, p, false)
	}
	return renderOperand(e.L, p, false) + e.Op.String() + renderOperand(e.R, p, true)
}

func (e *Unary) String() string {
	switch e.Op {
	case OpNeg:
		return "-" + renderOperand(e.X, 5, true)
	case OpNot:
		return ".NOT." + renderOperand(e.X, 3, true)
	}
	return "?" + e.X.String()
}

func (e *Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

func (e *Wildcard) String() string { return "?" + e.ID }

// Convenience constructors, used heavily by transformation passes.

// Int returns an integer literal expression.
func Int(v int64) *ConstInt { return &ConstInt{Val: v} }

// Real returns a real literal expression.
func Real(v float64) *ConstReal { return &ConstReal{Val: v} }

// Logical returns a logical literal expression.
func Logical(v bool) *ConstLogical { return &ConstLogical{Val: v} }

// Var returns a scalar variable reference.
func Var(name string) *VarRef { return &VarRef{Name: name} }

// Index returns an array reference with the given subscripts.
func Index(name string, subs ...Expr) *ArrayRef { return &ArrayRef{Name: name, Subs: subs} }

// Bin returns a binary operation.
func Bin(op BinOp, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// Add returns l + r.
func Add(l, r Expr) *Binary { return Bin(OpAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) *Binary { return Bin(OpSub, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) *Binary { return Bin(OpMul, l, r) }

// Div returns l / r.
func Div(l, r Expr) *Binary { return Bin(OpDiv, l, r) }

// Neg returns -x.
func Neg(x Expr) *Unary { return &Unary{Op: OpNeg, X: x} }

// Equal reports deep structural equality of two expressions.
// Wildcards are only equal to wildcards with the same ID.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *ConstInt:
		y, ok := b.(*ConstInt)
		return ok && x.Val == y.Val
	case *ConstReal:
		y, ok := b.(*ConstReal)
		return ok && x.Val == y.Val
	case *ConstLogical:
		y, ok := b.(*ConstLogical)
		return ok && x.Val == y.Val
	case *VarRef:
		y, ok := b.(*VarRef)
		return ok && x.Name == y.Name
	case *ArrayRef:
		y, ok := b.(*ArrayRef)
		if !ok || x.Name != y.Name || len(x.Subs) != len(y.Subs) {
			return false
		}
		for i := range x.Subs {
			if !Equal(x.Subs[i], y.Subs[i]) {
				return false
			}
		}
		return true
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && Equal(x.X, y.X)
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Wildcard:
		y, ok := b.(*Wildcard)
		return ok && x.ID == y.ID
	}
	return false
}

// Children returns the direct subexpressions of e (nil for leaves).
func Children(e Expr) []Expr {
	switch x := e.(type) {
	case *ArrayRef:
		return x.Subs
	case *Binary:
		return []Expr{x.L, x.R}
	case *Unary:
		return []Expr{x.X}
	case *Call:
		return x.Args
	}
	return nil
}

// WalkExpr calls fn for e and every subexpression, pre-order. If fn
// returns false the children of that node are not visited.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	for _, c := range Children(e) {
		WalkExpr(c, fn)
	}
}

// MapExpr rebuilds e bottom-up, replacing every node n with fn(n') where
// n' is n with already-mapped children. fn may return its argument
// unchanged. The input expression is not modified.
func MapExpr(e Expr, fn func(Expr) Expr) Expr {
	switch x := e.(type) {
	case *ArrayRef:
		c := &ArrayRef{Name: x.Name, Subs: make([]Expr, len(x.Subs))}
		for i, s := range x.Subs {
			c.Subs[i] = MapExpr(s, fn)
		}
		return fn(c)
	case *Binary:
		return fn(&Binary{Op: x.Op, L: MapExpr(x.L, fn), R: MapExpr(x.R, fn)})
	case *Unary:
		return fn(&Unary{Op: x.Op, X: MapExpr(x.X, fn)})
	case *Call:
		c := &Call{Name: x.Name, Args: make([]Expr, len(x.Args))}
		for i, a := range x.Args {
			c.Args[i] = MapExpr(a, fn)
		}
		return fn(c)
	default:
		return fn(e.Clone())
	}
}

// SubstVar returns e with every scalar reference to name replaced by a
// clone of repl. The input is not modified.
func SubstVar(e Expr, name string, repl Expr) Expr {
	return MapExpr(e, func(n Expr) Expr {
		if v, ok := n.(*VarRef); ok && v.Name == name {
			return repl.Clone()
		}
		return n
	})
}

// VarsIn returns the set of scalar variable names referenced in e.
// Array names (from ArrayRef and whole-array VarRef actuals) are not
// distinguished here; ArrayRef base names are excluded, subscripts are
// included.
func VarsIn(e Expr) map[string]bool {
	set := map[string]bool{}
	WalkExpr(e, func(n Expr) bool {
		if v, ok := n.(*VarRef); ok {
			set[v.Name] = true
		}
		return true
	})
	return set
}

// ArraysIn returns the set of array names referenced (subscripted) in e.
func ArraysIn(e Expr) map[string]bool {
	set := map[string]bool{}
	WalkExpr(e, func(n Expr) bool {
		if a, ok := n.(*ArrayRef); ok {
			set[a.Name] = true
		}
		return true
	})
	return set
}

// References reports whether e references name as either a scalar
// variable or an array base name.
func References(e Expr, name string) bool {
	found := false
	WalkExpr(e, func(n Expr) bool {
		switch x := n.(type) {
		case *VarRef:
			if x.Name == name {
				found = true
			}
		case *ArrayRef:
			if x.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// CountNodes returns the number of nodes in the expression tree; the
// interpreter's cycle model and test assertions use it.
func CountNodes(e Expr) int {
	n := 0
	WalkExpr(e, func(Expr) bool { n++; return true })
	return n
}
