package ir

import "fmt"

// UnitKind discriminates program units.
type UnitKind int

// Program unit kinds.
const (
	UnitProgram UnitKind = iota
	UnitSubroutine
	UnitFunction
)

// String returns the Fortran keyword for the kind.
func (k UnitKind) String() string {
	switch k {
	case UnitProgram:
		return "PROGRAM"
	case UnitSubroutine:
		return "SUBROUTINE"
	case UnitFunction:
		return "FUNCTION"
	}
	return "?"
}

// ProgramUnit is a PROGRAM, SUBROUTINE, or FUNCTION: a symbol table,
// formal argument list, and statement body (the paper's ProgramUnit
// container of statements, symbol table, common blocks, equivalences).
type ProgramUnit struct {
	Kind    UnitKind
	Name    string
	Formals []string
	Symbols *SymbolTable
	Body    *Block
	// ReturnType is set for functions; the function result is assigned
	// to the variable named after the function.
	ReturnType Type
	// Source is the unit's raw source text as sliced by the parser at
	// parse time ("" for units built programmatically). It is parse
	// metadata, NOT an alternate rendering: transformation passes do
	// not maintain it, so it describes the unit only as long as the
	// unit is untransformed. Incremental compilation keys untouched
	// units by it (together with Program.FuncsSig) to skip re-rendering
	// their IR; use Fortran() for the canonical current-state text.
	Source string
}

// NewUnit returns an empty unit of the given kind.
func NewUnit(kind UnitKind, name string) *ProgramUnit {
	return &ProgramUnit{Kind: kind, Name: name, Symbols: NewSymbolTable(), Body: NewBlock()}
}

// Clone deep-copies the unit.
func (u *ProgramUnit) Clone() *ProgramUnit {
	return &ProgramUnit{
		Kind:       u.Kind,
		Name:       u.Name,
		Formals:    append([]string(nil), u.Formals...),
		Symbols:    u.Symbols.Clone(),
		Body:       u.Body.Clone(),
		ReturnType: u.ReturnType,
		Source:     u.Source,
	}
}

// Program is a collection of program units (the paper's Program class).
type Program struct {
	Units []*ProgramUnit
	// FuncsSig identifies the FUNCTION-name set the parser pre-scanned
	// before parsing any unit ("" for programs built or merged
	// programmatically). A unit's parse depends on this global set —
	// F(I) parses as a call when F is a known function and as an array
	// reference otherwise — so it is part of the parse context a unit's
	// raw Source must be interpreted under. Like ProgramUnit.Source it
	// is parse metadata, frozen at parse time.
	FuncsSig string
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	c := NewProgram()
	c.FuncsSig = p.FuncsSig
	for _, u := range p.Units {
		c.Units = append(c.Units, u.Clone())
	}
	return c
}

// Add appends a unit; adding a second unit with the same name is a
// consistency error.
func (p *Program) Add(u *ProgramUnit) {
	if p.Unit(u.Name) != nil {
		panic(&ConsistencyError{Msg: fmt.Sprintf("duplicate program unit %s", u.Name)})
	}
	p.Units = append(p.Units, u)
}

// Merge adds every unit of other into p. The merged program is no
// longer the product of a single parse, so its FuncsSig is cleared:
// the incoming units' Sources were parsed under other's function set,
// not p's, and keeping either signature would misdescribe half the
// units.
func (p *Program) Merge(other *Program) {
	p.FuncsSig = ""
	for _, u := range other.Units {
		p.Add(u)
	}
}

// Unit returns the unit named name, or nil.
func (p *Program) Unit(name string) *ProgramUnit {
	for _, u := range p.Units {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// Main returns the PROGRAM unit, or the first unit if none is marked.
func (p *Program) Main() *ProgramUnit {
	for _, u := range p.Units {
		if u.Kind == UnitProgram {
			return u
		}
	}
	if len(p.Units) > 0 {
		return p.Units[0]
	}
	return nil
}

// ConsistencyError is the error reported by the IR's internal
// consistency machinery (Polaris' p_assert / internal consistency
// errors). It is delivered by panic from mutating operations that would
// corrupt the representation, and as an ordinary error from Check.
type ConsistencyError struct {
	Msg string
}

// Error implements error.
func (e *ConsistencyError) Error() string { return "ir: consistency: " + e.Msg }

// Assert panics with a ConsistencyError when cond is false. It is the
// analogue of the paper's p_assert: assumptions stated explicitly and
// checked at run time.
func Assert(cond bool, msg string) {
	if !cond {
		panic(&ConsistencyError{Msg: msg})
	}
}
