package ir

import "fmt"

// UnitKind discriminates program units.
type UnitKind int

// Program unit kinds.
const (
	UnitProgram UnitKind = iota
	UnitSubroutine
	UnitFunction
)

// String returns the Fortran keyword for the kind.
func (k UnitKind) String() string {
	switch k {
	case UnitProgram:
		return "PROGRAM"
	case UnitSubroutine:
		return "SUBROUTINE"
	case UnitFunction:
		return "FUNCTION"
	}
	return "?"
}

// ProgramUnit is a PROGRAM, SUBROUTINE, or FUNCTION: a symbol table,
// formal argument list, and statement body (the paper's ProgramUnit
// container of statements, symbol table, common blocks, equivalences).
type ProgramUnit struct {
	Kind    UnitKind
	Name    string
	Formals []string
	Symbols *SymbolTable
	Body    *Block
	// ReturnType is set for functions; the function result is assigned
	// to the variable named after the function.
	ReturnType Type
}

// NewUnit returns an empty unit of the given kind.
func NewUnit(kind UnitKind, name string) *ProgramUnit {
	return &ProgramUnit{Kind: kind, Name: name, Symbols: NewSymbolTable(), Body: NewBlock()}
}

// Clone deep-copies the unit.
func (u *ProgramUnit) Clone() *ProgramUnit {
	return &ProgramUnit{
		Kind:       u.Kind,
		Name:       u.Name,
		Formals:    append([]string(nil), u.Formals...),
		Symbols:    u.Symbols.Clone(),
		Body:       u.Body.Clone(),
		ReturnType: u.ReturnType,
	}
}

// Program is a collection of program units (the paper's Program class).
type Program struct {
	Units []*ProgramUnit
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	c := NewProgram()
	for _, u := range p.Units {
		c.Units = append(c.Units, u.Clone())
	}
	return c
}

// Add appends a unit; adding a second unit with the same name is a
// consistency error.
func (p *Program) Add(u *ProgramUnit) {
	if p.Unit(u.Name) != nil {
		panic(&ConsistencyError{Msg: fmt.Sprintf("duplicate program unit %s", u.Name)})
	}
	p.Units = append(p.Units, u)
}

// Merge adds every unit of other into p.
func (p *Program) Merge(other *Program) {
	for _, u := range other.Units {
		p.Add(u)
	}
}

// Unit returns the unit named name, or nil.
func (p *Program) Unit(name string) *ProgramUnit {
	for _, u := range p.Units {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// Main returns the PROGRAM unit, or the first unit if none is marked.
func (p *Program) Main() *ProgramUnit {
	for _, u := range p.Units {
		if u.Kind == UnitProgram {
			return u
		}
	}
	if len(p.Units) > 0 {
		return p.Units[0]
	}
	return nil
}

// ConsistencyError is the error reported by the IR's internal
// consistency machinery (Polaris' p_assert / internal consistency
// errors). It is delivered by panic from mutating operations that would
// corrupt the representation, and as an ordinary error from Check.
type ConsistencyError struct {
	Msg string
}

// Error implements error.
func (e *ConsistencyError) Error() string { return "ir: consistency: " + e.Msg }

// Assert panics with a ConsistencyError when cond is false. It is the
// analogue of the paper's p_assert: assumptions stated explicitly and
// checked at run time.
func Assert(cond bool, msg string) {
	if !cond {
		panic(&ConsistencyError{Msg: msg})
	}
}
