package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Int(42), "42"},
		{Real(1.5), "1.5"},
		{Real(2), "2.0"},
		{Logical(true), ".TRUE."},
		{Logical(false), ".FALSE."},
		{Var("X"), "X"},
		{Index("A", Var("I"), Int(2)), "A(I,2)"},
		{Add(Var("X"), Int(1)), "X+1"},
		{Mul(Add(Var("X"), Int(1)), Var("Y")), "(X+1)*Y"},
		{Sub(Var("X"), Sub(Var("Y"), Var("Z"))), "X-(Y-Z)"},
		{Div(Var("X"), Mul(Var("Y"), Var("Z"))), "X/(Y*Z)"},
		{Bin(OpPow, Var("N"), Int(2)), "N**2"},
		{Neg(Var("X")), "-X"},
		{Neg(Add(Var("X"), Int(1))), "-(X+1)"},
		{Add(Var("X"), Neg(Var("Y"))), "X+(-Y)"},
		{Bin(OpLt, Var("I"), Var("N")), "I.LT.N"},
		{Bin(OpAnd, Bin(OpLt, Var("I"), Var("N")), Logical(true)), "I.LT.N.AND..TRUE."},
		{&Unary{Op: OpNot, X: Var("FLAG")}, ".NOT.FLAG"},
		{&Call{Name: "MOD", Args: []Expr{Var("I"), Int(2)}}, "MOD(I,2)"},
		{&Wildcard{ID: "x"}, "?x"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	a := Add(Mul(Var("I"), Int(2)), Index("A", Var("J")))
	b := Add(Mul(Var("I"), Int(2)), Index("A", Var("J")))
	if !Equal(a, b) {
		t.Errorf("structurally equal expressions reported unequal")
	}
	c := Add(Mul(Var("I"), Int(3)), Index("A", Var("J")))
	if Equal(a, c) {
		t.Errorf("different expressions reported equal")
	}
	if Equal(Int(1), Real(1)) {
		t.Errorf("ConstInt equal to ConstReal")
	}
	if !Equal(&Wildcard{ID: "x"}, &Wildcard{ID: "x"}) {
		t.Errorf("same-ID wildcards unequal")
	}
	if Equal(&Wildcard{ID: "x"}, &Wildcard{ID: "y"}) {
		t.Errorf("different-ID wildcards equal")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := Add(Var("X"), Index("A", Var("I")))
	cp := orig.Clone()
	if !Equal(orig, cp) {
		t.Fatalf("clone differs from original")
	}
	cp.(*Binary).L.(*VarRef).Name = "Y"
	if orig.L.(*VarRef).Name != "X" {
		t.Errorf("mutating clone changed original")
	}
}

func TestSubstVar(t *testing.T) {
	e := Add(Var("K"), Mul(Var("K"), Var("N")))
	got := SubstVar(e, "K", Add(Var("I"), Int(1)))
	want := "I+1+(I+1)*N"
	if got.String() != want {
		t.Errorf("SubstVar = %q, want %q", got, want)
	}
	// Original untouched.
	if e.String() != "K+K*N" {
		t.Errorf("SubstVar mutated input: %q", e)
	}
	// Array base names are not substituted.
	e2 := Index("K", Var("K"))
	got2 := SubstVar(e2, "K", Int(5))
	if got2.String() != "K(5)" {
		t.Errorf("SubstVar on array ref = %q, want K(5)", got2)
	}
}

func TestVarsInArraysIn(t *testing.T) {
	e := Add(Index("A", Add(Var("I"), Var("N"))), Mul(Var("X"), Index("B", Var("J"))))
	vars := VarsIn(e)
	for _, v := range []string{"I", "N", "X", "J"} {
		if !vars[v] {
			t.Errorf("VarsIn missing %s", v)
		}
	}
	if vars["A"] || vars["B"] {
		t.Errorf("VarsIn included array names: %v", vars)
	}
	arrs := ArraysIn(e)
	if !arrs["A"] || !arrs["B"] || len(arrs) != 2 {
		t.Errorf("ArraysIn = %v, want {A,B}", arrs)
	}
}

func TestReferences(t *testing.T) {
	e := Add(Index("A", Var("I")), Int(3))
	if !References(e, "A") || !References(e, "I") {
		t.Errorf("References failed to find A or I")
	}
	if References(e, "B") {
		t.Errorf("References found absent name")
	}
}

func TestMapExprDoesNotMutate(t *testing.T) {
	e := Add(Var("I"), Mul(Var("I"), Var("J")))
	out := MapExpr(e, func(n Expr) Expr {
		if v, ok := n.(*VarRef); ok && v.Name == "I" {
			return Int(7)
		}
		return n
	})
	if out.String() != "7+7*J" {
		t.Errorf("MapExpr = %q, want 7+7*J", out)
	}
	if e.String() != "I+I*J" {
		t.Errorf("MapExpr mutated input: %q", e)
	}
}

func TestCountNodes(t *testing.T) {
	if n := CountNodes(Add(Var("X"), Mul(Var("Y"), Int(2)))); n != 5 {
		t.Errorf("CountNodes = %d, want 5", n)
	}
}

// Property: Clone always produces an Equal expression, and String of
// equal expressions is identical.
func TestCloneEqualProperty(t *testing.T) {
	f := func(seed int64) bool {
		e := randomExpr(&seed, 4)
		c := e.Clone()
		return Equal(e, c) && e.String() == c.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomExpr builds a deterministic pseudo-random expression from a
// seed, used by property tests here and in other packages' tests.
func randomExpr(seed *int64, depth int) Expr {
	next := func(n int64) int64 {
		*seed = (*seed*6364136223846793005 + 1442695040888963407)
		v := *seed >> 33
		if v < 0 {
			v = -v
		}
		return v % n
	}
	if depth == 0 || next(4) == 0 {
		switch next(3) {
		case 0:
			return Int(next(100) - 50)
		case 1:
			return Var(string(rune('I' + next(5))))
		default:
			return Index("A", Int(next(10)))
		}
	}
	switch next(4) {
	case 0:
		return Add(randomExpr(seed, depth-1), randomExpr(seed, depth-1))
	case 1:
		return Mul(randomExpr(seed, depth-1), randomExpr(seed, depth-1))
	case 2:
		return Neg(randomExpr(seed, depth-1))
	default:
		return Sub(randomExpr(seed, depth-1), randomExpr(seed, depth-1))
	}
}

func TestRenderPrecedenceRoundTrip(t *testing.T) {
	// (X+1)*(Y-2) must keep both parenthesized groups.
	e := Mul(Add(Var("X"), Int(1)), Sub(Var("Y"), Int(2)))
	s := e.String()
	if !strings.Contains(s, "(X+1)") || !strings.Contains(s, "(Y-2)") {
		t.Errorf("precedence lost: %q", s)
	}
}
