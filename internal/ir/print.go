package ir

import (
	"fmt"
	"strings"
)

// Fortran renders the program as Fortran source (free-form layout with
// six-column-style indentation). The output re-parses to an equivalent
// program; golden tests in the parser package check the round trip.
func (p *Program) Fortran() string {
	var b strings.Builder
	for i, u := range p.Units {
		if i > 0 {
			b.WriteString("\n")
		}
		u.write(&b)
	}
	return b.String()
}

// Fortran renders a single unit as Fortran source.
func (u *ProgramUnit) Fortran() string {
	var b strings.Builder
	u.write(&b)
	return b.String()
}

func (u *ProgramUnit) write(b *strings.Builder) {
	switch u.Kind {
	case UnitProgram:
		fmt.Fprintf(b, "      PROGRAM %s\n", u.Name)
	case UnitSubroutine:
		fmt.Fprintf(b, "      SUBROUTINE %s(%s)\n", u.Name, strings.Join(u.Formals, ","))
	case UnitFunction:
		fmt.Fprintf(b, "      %s FUNCTION %s(%s)\n", u.ReturnType, u.Name, strings.Join(u.Formals, ","))
	}
	u.writeDecls(b)
	writeBlock(b, u.Body, 1)
	b.WriteString("      END\n")
}

func (u *ProgramUnit) writeDecls(b *strings.Builder) {
	// PARAMETER constants first (they may appear in dimension bounds),
	// in declaration order; then typed declarations; then COMMONs.
	for _, name := range u.Symbols.Names() {
		s := u.Symbols.Lookup(name)
		if s.Param == nil {
			continue
		}
		fmt.Fprintf(b, "      %s %s\n", s.Type, s.Name)
		fmt.Fprintf(b, "      PARAMETER (%s=%s)\n", s.Name, s.Param)
	}
	for _, name := range u.Symbols.Names() {
		s := u.Symbols.Lookup(name)
		if s.Param != nil {
			continue
		}
		decl := s.Name
		if s.IsArray() {
			dims := make([]string, len(s.Dims))
			for i, d := range s.Dims {
				hi := "*"
				if d.Hi != nil {
					hi = d.Hi.String()
				}
				if d.Lo != nil && !Equal(d.Lo, Int(1)) {
					dims[i] = d.Lo.String() + ":" + hi
				} else {
					dims[i] = hi
				}
			}
			decl += "(" + strings.Join(dims, ",") + ")"
		}
		fmt.Fprintf(b, "      %s %s\n", s.Type, decl)
	}
	// COMMON blocks, preserving member order.
	blocks := map[string][]string{}
	var blockOrder []string
	for _, name := range u.Symbols.Names() {
		s := u.Symbols.Lookup(name)
		if s.Common == "" {
			continue
		}
		if _, seen := blocks[s.Common]; !seen {
			blockOrder = append(blockOrder, s.Common)
		}
		blocks[s.Common] = append(blocks[s.Common], s.Name)
	}
	for _, blk := range blockOrder {
		fmt.Fprintf(b, "      COMMON /%s/ %s\n", blk, strings.Join(blocks[blk], ","))
	}
}

func writeBlock(b *strings.Builder, blk *Block, depth int) {
	if blk == nil {
		return
	}
	for _, s := range blk.Stmts {
		writeStmt(b, s, depth)
	}
}

func indent(b *strings.Builder, depth int) {
	b.WriteString("      ")
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func writeStmt(b *strings.Builder, s Stmt, depth int) {
	switch x := s.(type) {
	case *AssignStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s = %s\n", x.LHS, x.RHS)
	case *DoStmt:
		writeParDirective(b, x, depth)
		indent(b, depth)
		if x.Step != nil {
			fmt.Fprintf(b, "DO %s = %s, %s, %s\n", x.Index, x.Init, x.Limit, x.Step)
		} else {
			fmt.Fprintf(b, "DO %s = %s, %s\n", x.Index, x.Init, x.Limit)
		}
		writeBlock(b, x.Body, depth+1)
		indent(b, depth)
		b.WriteString("END DO\n")
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "IF (%s) THEN\n", x.Cond)
		writeBlock(b, x.Then, depth+1)
		if x.Else != nil {
			indent(b, depth)
			b.WriteString("ELSE\n")
			writeBlock(b, x.Else, depth+1)
		}
		indent(b, depth)
		b.WriteString("END IF\n")
	case *CallStmt:
		indent(b, depth)
		if len(x.Args) == 0 {
			fmt.Fprintf(b, "CALL %s\n", x.Name)
		} else {
			parts := make([]string, len(x.Args))
			for i, a := range x.Args {
				parts[i] = a.String()
			}
			fmt.Fprintf(b, "CALL %s(%s)\n", x.Name, strings.Join(parts, ","))
		}
	case *ReturnStmt:
		indent(b, depth)
		b.WriteString("RETURN\n")
	case *StopStmt:
		indent(b, depth)
		b.WriteString("STOP\n")
	case *ContinueStmt:
		indent(b, depth)
		b.WriteString("CONTINUE\n")
	case *CommentStmt:
		fmt.Fprintf(b, "C %s\n", x.Text)
	}
}

// writeParDirective emits the OpenMP-style directive encoding the
// parallelization verdict of a loop (the Polaris output for the target
// machine's annotated Fortran dialect).
func writeParDirective(b *strings.Builder, d *DoStmt, depth int) {
	p := d.Par
	if p == nil {
		return
	}
	if !p.Parallel {
		if len(p.LRPD) > 0 {
			fmt.Fprintf(b, "C$POLARIS LRPD(%s)\n", strings.Join(p.LRPD, ","))
		}
		return
	}
	clauses := ""
	priv := append(append([]string(nil), p.Private...), p.PrivateArrays...)
	if len(priv) > 0 {
		clauses += " PRIVATE(" + strings.Join(priv, ",") + ")"
	}
	if len(p.LastValue) > 0 {
		clauses += " LASTPRIVATE(" + strings.Join(p.LastValue, ",") + ")"
	}
	for _, r := range p.Reductions {
		clauses += fmt.Sprintf(" REDUCTION(%s:%s)", r.Op, r.Target)
	}
	fmt.Fprintf(b, "C$OMP PARALLEL DO%s\n", clauses)
}
