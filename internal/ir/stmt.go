package ir

// Stmt is a node in the statement tree of a program unit. Like
// expressions, statements are never shared; Clone produces deep copies.
type Stmt interface {
	Clone() Stmt
	stmtNode()
}

// Block is an ordered list of statements (the Polaris StmtList). The
// high-level member functions of the paper's StmtList — iteration over
// selected statements, well-formed insertion and deletion — are methods
// here and in walk.go.
type Block struct {
	Stmts []Stmt
}

// NewBlock returns a block holding the given statements.
func NewBlock(stmts ...Stmt) *Block { return &Block{Stmts: stmts} }

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	if b == nil {
		return nil
	}
	c := &Block{Stmts: make([]Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		c.Stmts[i] = s.Clone()
	}
	return c
}

// Insert places stmts before position i. Insert(len, ...) appends.
func (b *Block) Insert(i int, stmts ...Stmt) {
	Assert(i >= 0 && i <= len(b.Stmts), "Block.Insert: position out of range")
	b.Stmts = append(b.Stmts[:i], append(append([]Stmt{}, stmts...), b.Stmts[i:]...)...)
}

// Append adds stmts at the end of the block.
func (b *Block) Append(stmts ...Stmt) { b.Stmts = append(b.Stmts, stmts...) }

// Remove deletes the statement at position i and returns it.
func (b *Block) Remove(i int) Stmt {
	Assert(i >= 0 && i < len(b.Stmts), "Block.Remove: position out of range")
	s := b.Stmts[i]
	b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
	return s
}

// RemoveStmt deletes the first occurrence of s (by identity) anywhere in
// the block tree and reports whether it was found.
func (b *Block) RemoveStmt(s Stmt) bool {
	for i, st := range b.Stmts {
		if st == s {
			b.Remove(i)
			return true
		}
		switch x := st.(type) {
		case *DoStmt:
			if x.Body.RemoveStmt(s) {
				return true
			}
		case *IfStmt:
			if x.Then.RemoveStmt(s) {
				return true
			}
			if x.Else != nil && x.Else.RemoveStmt(s) {
				return true
			}
		}
	}
	return false
}

// IndexOf returns the position of s in the top level of the block, or -1.
func (b *Block) IndexOf(s Stmt) int {
	for i, st := range b.Stmts {
		if st == s {
			return i
		}
	}
	return -1
}

// AssignStmt is "LHS = RHS". LHS is a *VarRef or *ArrayRef.
type AssignStmt struct {
	LHS Expr
	RHS Expr
}

// Reduction describes a recognized reduction in a loop: Target is the
// scalar or array being accumulated into, Op the associative operator
// ("+", "*", "MAX", "MIN"). Histogram reductions (different array
// elements across iterations) have Histogram set.
type Reduction struct {
	Target    string
	Op        string
	Histogram bool
}

// ParInfo carries the parallelization verdict and clauses attached to a
// DO loop by the analysis passes.
type ParInfo struct {
	// Parallel marks the loop as a DOALL.
	Parallel bool
	// Reason records why the loop was or was not parallelized, for
	// reports and for EXPERIMENTS.md comparisons.
	Reason string
	// Private lists privatized scalar variables.
	Private []string
	// PrivateArrays lists privatized arrays.
	PrivateArrays []string
	// LastValue lists privatized scalars whose final value is live-out
	// and must be copied out of the last iteration.
	LastValue []string
	// Reductions lists recognized reductions.
	Reductions []Reduction
	// LRPD lists shared arrays whose access pattern is unknown at
	// compile time; the loop is a candidate for speculative run-time
	// parallelization (the PD test) over these arrays.
	LRPD []string
}

// Clone deep-copies the annotation.
func (p *ParInfo) Clone() *ParInfo {
	if p == nil {
		return nil
	}
	c := *p
	c.Private = append([]string(nil), p.Private...)
	c.PrivateArrays = append([]string(nil), p.PrivateArrays...)
	c.LastValue = append([]string(nil), p.LastValue...)
	c.Reductions = append([]Reduction(nil), p.Reductions...)
	c.LRPD = append([]string(nil), p.LRPD...)
	return &c
}

// DoStmt is "DO Index = Init, Limit [, Step] ... END DO". Step nil
// means 1. Par is nil until analysis runs.
type DoStmt struct {
	Index string
	Init  Expr
	Limit Expr
	Step  Expr
	Body  *Block
	Par   *ParInfo
	// ID is the stable loop identity ("MAIN/L30") assigned by the
	// analysis driver, linking compile-time decision records to runtime
	// execution metrics. Empty until analysis runs; preserved by Clone.
	ID string
}

// IfStmt is a block IF; Else may be nil. A logical IF is represented
// as an IfStmt whose Then block holds one statement and whose Else is nil.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block
}

// CallStmt is "CALL Name(Args)".
type CallStmt struct {
	Name string
	Args []Expr
}

// ReturnStmt is "RETURN".
type ReturnStmt struct{}

// StopStmt is "STOP".
type StopStmt struct{}

// ContinueStmt is "CONTINUE" (a no-op).
type ContinueStmt struct{}

// CommentStmt preserves a source comment or compiler-inserted note.
type CommentStmt struct {
	Text string
}

func (*AssignStmt) stmtNode()   {}
func (*DoStmt) stmtNode()       {}
func (*IfStmt) stmtNode()       {}
func (*CallStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode()   {}
func (*StopStmt) stmtNode()     {}
func (*ContinueStmt) stmtNode() {}
func (*CommentStmt) stmtNode()  {}

// Clone returns a deep copy.
func (s *AssignStmt) Clone() Stmt { return &AssignStmt{LHS: s.LHS.Clone(), RHS: s.RHS.Clone()} }

// Clone returns a deep copy, including the parallel annotation and the
// loop ID.
func (s *DoStmt) Clone() Stmt {
	c := &DoStmt{Index: s.Index, Init: s.Init.Clone(), Limit: s.Limit.Clone(), Body: s.Body.Clone(), Par: s.Par.Clone(), ID: s.ID}
	if s.Step != nil {
		c.Step = s.Step.Clone()
	}
	return c
}

// Clone returns a deep copy.
func (s *IfStmt) Clone() Stmt {
	c := &IfStmt{Cond: s.Cond.Clone(), Then: s.Then.Clone()}
	if s.Else != nil {
		c.Else = s.Else.Clone()
	}
	return c
}

// Clone returns a deep copy.
func (s *CallStmt) Clone() Stmt {
	c := &CallStmt{Name: s.Name, Args: make([]Expr, len(s.Args))}
	for i, a := range s.Args {
		c.Args[i] = a.Clone()
	}
	return c
}

// Clone returns a copy.
func (s *ReturnStmt) Clone() Stmt { return &ReturnStmt{} }

// Clone returns a copy.
func (s *StopStmt) Clone() Stmt { return &StopStmt{} }

// Clone returns a copy.
func (s *ContinueStmt) Clone() Stmt { return &ContinueStmt{} }

// Clone returns a copy.
func (s *CommentStmt) Clone() Stmt { return &CommentStmt{Text: s.Text} }

// StepOr1 returns the loop step, or the constant 1 if none was written.
func (s *DoStmt) StepOr1() Expr {
	if s.Step == nil {
		return Int(1)
	}
	return s.Step
}

// EnsurePar returns the loop's annotation, allocating it if needed.
func (s *DoStmt) EnsurePar() *ParInfo {
	if s.Par == nil {
		s.Par = &ParInfo{}
	}
	return s.Par
}
