package ir

import (
	"fmt"
	"sort"
)

// Type is the Fortran type of a symbol or expression.
type Type int

// Fortran types of the supported subset.
const (
	TypeUnknown Type = iota
	TypeInteger
	TypeReal
	TypeLogical
)

// String returns the Fortran keyword for the type.
func (t Type) String() string {
	switch t {
	case TypeInteger:
		return "INTEGER"
	case TypeReal:
		return "REAL"
	case TypeLogical:
		return "LOGICAL"
	}
	return "UNKNOWN"
}

// Dim is one array dimension LO:HI. Lo defaults to 1. Hi == nil means
// an assumed-size dimension (declared "*"), legal only for formals.
type Dim struct {
	Lo Expr
	Hi Expr
}

// Clone deep-copies the dimension.
func (d Dim) Clone() Dim {
	c := Dim{}
	if d.Lo != nil {
		c.Lo = d.Lo.Clone()
	}
	if d.Hi != nil {
		c.Hi = d.Hi.Clone()
	}
	return c
}

// LoOr1 returns the lower bound, or the constant 1 if not written.
func (d Dim) LoOr1() Expr {
	if d.Lo == nil {
		return Int(1)
	}
	return d.Lo
}

// Symbol is one entry of a unit's symbol table.
type Symbol struct {
	Name string
	Type Type
	// Dims is non-nil for arrays.
	Dims []Dim
	// Formal marks dummy arguments.
	Formal bool
	// Param holds the value of a PARAMETER constant, or nil.
	Param Expr
	// Common names the COMMON block the symbol lives in, or "".
	Common string
}

// IsArray reports whether the symbol is declared with dimensions.
func (s *Symbol) IsArray() bool { return len(s.Dims) > 0 }

// Clone deep-copies the symbol.
func (s *Symbol) Clone() *Symbol {
	c := *s
	c.Dims = make([]Dim, len(s.Dims))
	for i, d := range s.Dims {
		c.Dims[i] = d.Clone()
	}
	if s.Param != nil {
		c.Param = s.Param.Clone()
	}
	return &c
}

// SymbolTable maps names to symbols and remembers declaration order.
// Lookups of undeclared names follow the Fortran implicit rule
// (I..N integer, otherwise real) when implicit typing is enabled.
type SymbolTable struct {
	syms  map[string]*Symbol
	order []string
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{syms: map[string]*Symbol{}}
}

// Clone deep-copies the table.
func (t *SymbolTable) Clone() *SymbolTable {
	c := NewSymbolTable()
	for _, name := range t.order {
		c.Insert(t.syms[name].Clone())
	}
	return c
}

// Insert adds sym to the table. Inserting a name twice is an internal
// consistency error (the Polaris aliasing rule).
func (t *SymbolTable) Insert(sym *Symbol) {
	Assert(sym.Name != "", "SymbolTable.Insert: empty name")
	if _, dup := t.syms[sym.Name]; dup {
		panic(&ConsistencyError{Msg: fmt.Sprintf("duplicate symbol %s", sym.Name)})
	}
	t.syms[sym.Name] = sym
	t.order = append(t.order, sym.Name)
}

// Lookup returns the symbol for name, or nil.
func (t *SymbolTable) Lookup(name string) *Symbol { return t.syms[name] }

// Remove deletes name from the table; missing names are ignored.
func (t *SymbolTable) Remove(name string) {
	if _, ok := t.syms[name]; !ok {
		return
	}
	delete(t.syms, name)
	for i, n := range t.order {
		if n == name {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// Declare returns the symbol for name, creating it with the implicit
// Fortran type if it does not exist.
func (t *SymbolTable) Declare(name string) *Symbol {
	if s := t.syms[name]; s != nil {
		return s
	}
	s := &Symbol{Name: name, Type: ImplicitType(name)}
	t.Insert(s)
	return s
}

// Names returns the declared names in declaration order.
func (t *SymbolTable) Names() []string { return append([]string(nil), t.order...) }

// SortedNames returns the declared names sorted alphabetically.
func (t *SymbolTable) SortedNames() []string {
	names := t.Names()
	sort.Strings(names)
	return names
}

// Len returns the number of symbols.
func (t *SymbolTable) Len() int { return len(t.order) }

// FreshName returns a name with the given prefix that does not collide
// with any declared symbol, and declares it with the given type.
func (t *SymbolTable) FreshName(prefix string, typ Type, dims []Dim) string {
	name := prefix
	for i := 0; ; i++ {
		if i > 0 {
			name = fmt.Sprintf("%s%d", prefix, i)
		}
		if t.Lookup(name) == nil {
			break
		}
	}
	t.Insert(&Symbol{Name: name, Type: typ, Dims: dims})
	return name
}

// ImplicitType returns the Fortran implicit type for a name: INTEGER
// for names starting with I..N, REAL otherwise.
func ImplicitType(name string) Type {
	if name == "" {
		return TypeUnknown
	}
	c := name[0]
	if c >= 'I' && c <= 'N' {
		return TypeInteger
	}
	return TypeReal
}
