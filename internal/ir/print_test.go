package ir

import (
	"strings"
	"testing"
)

func TestFortranSubroutineAndFunction(t *testing.T) {
	p := NewProgram()

	sub := NewUnit(UnitSubroutine, "SCALE")
	sub.Formals = []string{"A", "N"}
	sub.Symbols.Insert(&Symbol{Name: "A", Type: TypeReal, Formal: true, Dims: []Dim{{Hi: Var("N")}}})
	sub.Symbols.Insert(&Symbol{Name: "N", Type: TypeInteger, Formal: true})
	sub.Body.Append(&ReturnStmt{})
	p.Add(sub)

	fn := NewUnit(UnitFunction, "F")
	fn.ReturnType = TypeReal
	fn.Formals = []string{"X"}
	fn.Symbols.Insert(&Symbol{Name: "F", Type: TypeReal})
	fn.Symbols.Insert(&Symbol{Name: "X", Type: TypeReal, Formal: true})
	fn.Body.Append(&AssignStmt{LHS: Var("F"), RHS: Mul(Var("X"), Var("X"))})
	p.Add(fn)

	src := p.Fortran()
	for _, want := range []string{
		"SUBROUTINE SCALE(A,N)",
		"REAL A(N)",
		"RETURN",
		"REAL FUNCTION F(X)",
		"F = X*X",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}

func TestFortranLowerBoundDims(t *testing.T) {
	u := NewUnit(UnitProgram, "P")
	u.Symbols.Insert(&Symbol{Name: "A", Type: TypeReal,
		Dims: []Dim{{Lo: Neg(Int(10)), Hi: Int(10)}}})
	u.Symbols.Insert(&Symbol{Name: "B", Type: TypeInteger,
		Dims: []Dim{{Hi: nil}}}) // assumed size
	src := u.Fortran()
	if !strings.Contains(src, "A(-10:10)") {
		t.Errorf("lower-bound dim lost:\n%s", src)
	}
	if !strings.Contains(src, "B(*)") {
		t.Errorf("assumed-size dim lost:\n%s", src)
	}
}

func TestFortranCommentAndControl(t *testing.T) {
	u := NewUnit(UnitProgram, "P")
	u.Body.Append(
		&CommentStmt{Text: "a note"},
		&ContinueStmt{},
		&StopStmt{},
	)
	src := u.Fortran()
	for _, want := range []string{"C a note", "CONTINUE", "STOP"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q:\n%s", want, src)
		}
	}
}

func TestFortranCallForms(t *testing.T) {
	u := NewUnit(UnitProgram, "P")
	u.Body.Append(
		&CallStmt{Name: "NOARG"},
		&CallStmt{Name: "TWO", Args: []Expr{Int(1), Var("X")}},
	)
	src := u.Fortran()
	if !strings.Contains(src, "CALL NOARG\n") {
		t.Errorf("zero-arg call wrong:\n%s", src)
	}
	if !strings.Contains(src, "CALL TWO(1,X)") {
		t.Errorf("two-arg call wrong:\n%s", src)
	}
}

func TestDirectiveForms(t *testing.T) {
	u := NewUnit(UnitProgram, "P")
	d := &DoStmt{Index: "I", Init: Int(1), Limit: Int(10), Body: NewBlock()}
	d.Par = &ParInfo{
		Parallel:      true,
		Private:       []string{"T"},
		PrivateArrays: []string{"W"},
		LastValue:     []string{"T"},
		Reductions:    []Reduction{{Target: "S", Op: "MAX"}},
	}
	lr := &DoStmt{Index: "J", Init: Int(1), Limit: Int(10), Body: NewBlock()}
	lr.Par = &ParInfo{LRPD: []string{"A", "B"}}
	u.Body.Append(d, lr)
	src := u.Fortran()
	for _, want := range []string{
		"C$OMP PARALLEL DO PRIVATE(T,W) LASTPRIVATE(T) REDUCTION(MAX:S)",
		"C$POLARIS LRPD(A,B)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q:\n%s", want, src)
		}
	}
}

func TestEnsureParAndStepPrinting(t *testing.T) {
	d := &DoStmt{Index: "I", Init: Int(10), Limit: Int(1), Step: Int(-2), Body: NewBlock()}
	u := NewUnit(UnitProgram, "P")
	u.Body.Append(d)
	if !strings.Contains(u.Fortran(), "DO I = 10, 1, -2") {
		t.Errorf("step printing wrong:\n%s", u.Fortran())
	}
	p := d.EnsurePar()
	if p == nil || d.Par != p {
		t.Errorf("EnsurePar did not allocate")
	}
	if d.EnsurePar() != p {
		t.Errorf("EnsurePar reallocated")
	}
}
