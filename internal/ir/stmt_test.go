package ir

import (
	"strings"
	"testing"
)

func simpleLoop() *DoStmt {
	return &DoStmt{
		Index: "I",
		Init:  Int(1),
		Limit: Var("N"),
		Body: NewBlock(
			&AssignStmt{LHS: Index("A", Var("I")), RHS: Add(Index("B", Var("I")), Int(1))},
		),
	}
}

func TestBlockInsertRemove(t *testing.T) {
	b := NewBlock()
	s1 := &AssignStmt{LHS: Var("X"), RHS: Int(1)}
	s2 := &AssignStmt{LHS: Var("Y"), RHS: Int(2)}
	s3 := &AssignStmt{LHS: Var("Z"), RHS: Int(3)}
	b.Append(s1, s3)
	b.Insert(1, s2)
	if b.IndexOf(s2) != 1 || len(b.Stmts) != 3 {
		t.Fatalf("Insert misplaced: %v", b.Stmts)
	}
	got := b.Remove(1)
	if got != s2 || len(b.Stmts) != 2 || b.Stmts[1] != s3 {
		t.Errorf("Remove returned %v", got)
	}
}

func TestBlockInsertOutOfRangePanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Errorf("Insert out of range did not panic")
		} else if _, ok := r.(*ConsistencyError); !ok {
			t.Errorf("panic value %T, want *ConsistencyError", r)
		}
	}()
	NewBlock().Insert(5, &ReturnStmt{})
}

func TestRemoveStmtNested(t *testing.T) {
	inner := &AssignStmt{LHS: Var("X"), RHS: Int(1)}
	d := &DoStmt{Index: "I", Init: Int(1), Limit: Int(10),
		Body: NewBlock(&IfStmt{Cond: Logical(true), Then: NewBlock(inner)})}
	b := NewBlock(d)
	if !b.RemoveStmt(inner) {
		t.Fatalf("RemoveStmt did not find nested statement")
	}
	if ContainsStmt(b, inner) {
		t.Errorf("statement still present after RemoveStmt")
	}
	if b.RemoveStmt(inner) {
		t.Errorf("RemoveStmt found already-removed statement")
	}
}

func TestDoStmtCloneDeep(t *testing.T) {
	d := simpleLoop()
	d.Par = &ParInfo{Parallel: true, Private: []string{"T"}}
	c := d.Clone().(*DoStmt)
	c.Body.Stmts[0].(*AssignStmt).RHS = Int(99)
	c.Par.Private[0] = "U"
	if d.Body.Stmts[0].(*AssignStmt).RHS.String() != "B(I)+1" {
		t.Errorf("clone shared body")
	}
	if d.Par.Private[0] != "T" {
		t.Errorf("clone shared ParInfo")
	}
}

func TestWalkAndLoops(t *testing.T) {
	outer := &DoStmt{Index: "I", Init: Int(1), Limit: Var("N"), Body: NewBlock()}
	mid := &DoStmt{Index: "J", Init: Int(1), Limit: Var("I"), Body: NewBlock()}
	innermost := &DoStmt{Index: "K", Init: Int(1), Limit: Var("J"), Body: NewBlock(
		&AssignStmt{LHS: Var("X"), RHS: Int(0)})}
	mid.Body.Append(innermost)
	outer.Body.Append(mid)
	b := NewBlock(outer)

	loops := Loops(b)
	if len(loops) != 3 || loops[0] != outer || loops[2] != innermost {
		t.Fatalf("Loops order wrong: %v", loops)
	}
	if got := OuterLoops(b); len(got) != 1 || got[0] != outer {
		t.Errorf("OuterLoops wrong")
	}
	nest := NestOf(outer)
	if len(nest) != 3 || nest[1] != mid {
		t.Errorf("NestOf wrong: %v", nest)
	}
	encl := EnclosingLoops(b, innermost.Body.Stmts[0])
	if len(encl) != 3 || encl[0] != outer || encl[2] != innermost {
		t.Errorf("EnclosingLoops = %v", encl)
	}
	if EnclosingLoops(b, &ReturnStmt{}) != nil {
		t.Errorf("EnclosingLoops found absent stmt")
	}
}

func TestOuterLoopsUnderIf(t *testing.T) {
	d := simpleLoop()
	b := NewBlock(&IfStmt{Cond: Logical(true), Then: NewBlock(d)})
	if got := OuterLoops(b); len(got) != 1 || got[0] != d {
		t.Errorf("OuterLoops did not descend into IF")
	}
}

func TestReferencesVar(t *testing.T) {
	d := simpleLoop()
	b := NewBlock(d)
	for _, name := range []string{"A", "B", "I", "N"} {
		if !ReferencesVar(b, name) {
			t.Errorf("ReferencesVar(%s) = false", name)
		}
	}
	if ReferencesVar(b, "Q") {
		t.Errorf("ReferencesVar found absent name")
	}
}

func TestMapStmtExprs(t *testing.T) {
	d := simpleLoop()
	b := NewBlock(d)
	MapStmtExprs(b, func(e Expr) Expr {
		if v, ok := e.(*VarRef); ok && v.Name == "N" {
			return Int(100)
		}
		return e
	})
	if d.Limit.String() != "100" {
		t.Errorf("MapStmtExprs did not rewrite loop bound: %s", d.Limit)
	}
}

func TestAssignmentsAndCount(t *testing.T) {
	d := simpleLoop()
	b := NewBlock(d, &AssignStmt{LHS: Var("S"), RHS: Int(0)})
	if got := Assignments(b); len(got) != 2 {
		t.Errorf("Assignments = %d, want 2", len(got))
	}
	if got := CountStmts(b); got != 3 {
		t.Errorf("CountStmts = %d, want 3", got)
	}
}

func TestFortranOutput(t *testing.T) {
	u := NewUnit(UnitProgram, "MAIN")
	u.Symbols.Insert(&Symbol{Name: "N", Type: TypeInteger, Param: Int(10)})
	u.Symbols.Insert(&Symbol{Name: "A", Type: TypeReal, Dims: []Dim{{Hi: Var("N")}}})
	u.Symbols.Insert(&Symbol{Name: "I", Type: TypeInteger})
	d := simpleLoop()
	d.Par = &ParInfo{Parallel: true, Reductions: []Reduction{{Target: "S", Op: "+"}}}
	u.Body.Append(d)
	p := NewProgram()
	p.Add(u)
	src := p.Fortran()
	for _, want := range []string{"PROGRAM MAIN", "PARAMETER (N=10)", "REAL A(N)", "C$OMP PARALLEL DO REDUCTION(+:S)", "DO I = 1, N", "END DO", "END"} {
		if !strings.Contains(src, want) {
			t.Errorf("Fortran output missing %q:\n%s", want, src)
		}
	}
}

func TestSymbolTable(t *testing.T) {
	st := NewSymbolTable()
	st.Insert(&Symbol{Name: "X", Type: TypeReal})
	if st.Lookup("X") == nil || st.Lookup("Y") != nil {
		t.Fatalf("Lookup wrong")
	}
	s := st.Declare("IVAL")
	if s.Type != TypeInteger {
		t.Errorf("implicit type of IVAL = %v, want INTEGER", s.Type)
	}
	s2 := st.Declare("XVAL")
	if s2.Type != TypeReal {
		t.Errorf("implicit type of XVAL = %v, want REAL", s2.Type)
	}
	if st.Len() != 3 {
		t.Errorf("Len = %d", st.Len())
	}
	fresh := st.FreshName("X", TypeReal, nil)
	if fresh == "X" || st.Lookup(fresh) == nil {
		t.Errorf("FreshName collided: %s", fresh)
	}
	st.Remove("X")
	if st.Lookup("X") != nil || st.Len() != 3 {
		t.Errorf("Remove failed")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate Insert did not panic")
		}
	}()
	st.Insert(&Symbol{Name: "IVAL"})
}

func TestCheckCatchesAliasing(t *testing.T) {
	u := NewUnit(UnitProgram, "MAIN")
	shared := Add(Var("X"), Int(1))
	u.Body.Append(&AssignStmt{LHS: Var("Y"), RHS: shared})
	u.Body.Append(&AssignStmt{LHS: Var("Z"), RHS: shared}) // aliased!
	p := NewProgram()
	p.Add(u)
	if err := p.Check(); err == nil {
		t.Errorf("Check missed aliased expression")
	}
}

func TestCheckCatchesRankMismatch(t *testing.T) {
	u := NewUnit(UnitProgram, "MAIN")
	u.Symbols.Insert(&Symbol{Name: "A", Type: TypeReal, Dims: []Dim{{Hi: Int(10)}, {Hi: Int(10)}}})
	u.Body.Append(&AssignStmt{LHS: Index("A", Int(1)), RHS: Int(0)})
	if err := u.Check(); err == nil {
		t.Errorf("Check missed rank mismatch")
	}
}

func TestCheckCatchesRealDoIndex(t *testing.T) {
	u := NewUnit(UnitProgram, "MAIN")
	u.Body.Append(&DoStmt{Index: "X", Init: Int(1), Limit: Int(10), Body: NewBlock()})
	if err := u.Check(); err == nil {
		t.Errorf("Check missed REAL DO index")
	}
}

func TestCheckCatchesEscapedWildcard(t *testing.T) {
	u := NewUnit(UnitProgram, "MAIN")
	u.Body.Append(&AssignStmt{LHS: Var("X"), RHS: &Wildcard{ID: "w"}})
	if err := u.Check(); err == nil {
		t.Errorf("Check missed escaped wildcard")
	}
}

func TestCheckAcceptsValidProgram(t *testing.T) {
	u := NewUnit(UnitProgram, "MAIN")
	u.Symbols.Insert(&Symbol{Name: "A", Type: TypeReal, Dims: []Dim{{Hi: Int(10)}}})
	d := simpleLoop()
	// B must be declared as an array.
	u.Symbols.Insert(&Symbol{Name: "B", Type: TypeReal, Dims: []Dim{{Hi: Int(10)}}})
	u.Body.Append(d)
	p := NewProgram()
	p.Add(u)
	if err := p.Check(); err != nil {
		t.Errorf("Check rejected valid program: %v", err)
	}
}

func TestProgramAddDuplicatePanics(t *testing.T) {
	p := NewProgram()
	p.Add(NewUnit(UnitSubroutine, "SUB"))
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate unit did not panic")
		}
	}()
	p.Add(NewUnit(UnitSubroutine, "SUB"))
}

func TestProgramMainAndMerge(t *testing.T) {
	p := NewProgram()
	s := NewUnit(UnitSubroutine, "SUB")
	m := NewUnit(UnitProgram, "MAIN")
	p.Add(s)
	p.Add(m)
	if p.Main() != m {
		t.Errorf("Main did not find PROGRAM unit")
	}
	q := NewProgram()
	q.Add(NewUnit(UnitSubroutine, "OTHER"))
	p.Merge(q)
	if p.Unit("OTHER") == nil {
		t.Errorf("Merge missed unit")
	}
}

func TestStepOr1(t *testing.T) {
	d := simpleLoop()
	if d.StepOr1().String() != "1" {
		t.Errorf("StepOr1 default wrong")
	}
	d.Step = Int(2)
	if d.StepOr1().String() != "2" {
		t.Errorf("StepOr1 explicit wrong")
	}
}
