package ir

import "fmt"

// Check verifies the internal consistency invariants the Polaris IR
// enforces (Section 2 of the paper):
//
//   - no structure sharing: an expression or statement node must not be
//     reachable from two places (aliased structures are an error);
//   - every referenced variable or array resolves in the unit's symbol
//     table (after implicit declaration) with the right rank;
//   - DO indices are integer scalars; loop bodies are well-formed;
//   - assignment targets are scalar or array references.
//
// Check returns the first violation found, or nil.
func (p *Program) Check() error {
	seenExpr := map[Expr]string{}
	seenStmt := map[Stmt]string{}
	for _, u := range p.Units {
		if err := u.check(seenExpr, seenStmt); err != nil {
			return err
		}
	}
	return nil
}

// Check verifies the unit in isolation.
func (u *ProgramUnit) Check() error {
	return u.check(map[Expr]string{}, map[Stmt]string{})
}

func (u *ProgramUnit) check(seenExpr map[Expr]string, seenStmt map[Stmt]string) error {
	if u.Symbols == nil || u.Body == nil {
		return &ConsistencyError{Msg: fmt.Sprintf("unit %s: nil symbol table or body", u.Name)}
	}
	for _, f := range u.Formals {
		if u.Symbols.Lookup(f) == nil {
			return &ConsistencyError{Msg: fmt.Sprintf("unit %s: formal %s undeclared", u.Name, f)}
		}
	}
	var err error
	where := func(s Stmt) string { return fmt.Sprintf("unit %s", u.Name) }
	WalkStmts(u.Body, func(s Stmt) bool {
		if err != nil {
			return false
		}
		// Stateless statements (RETURN/STOP/CONTINUE) are zero-sized:
		// Go may give distinct allocations the same address, and
		// sharing them is harmless anyway — exempt them from the
		// aliasing check.
		switch s.(type) {
		case *ReturnStmt, *StopStmt, *ContinueStmt:
		default:
			if prev, dup := seenStmt[s]; dup {
				err = &ConsistencyError{Msg: fmt.Sprintf("statement aliased between %s and %s", prev, where(s))}
				return false
			}
			seenStmt[s] = where(s)
		}
		if e := u.checkStmt(s, seenExpr); e != nil {
			err = e
			return false
		}
		return true
	})
	return err
}

func (u *ProgramUnit) checkStmt(s Stmt, seenExpr map[Expr]string) error {
	switch x := s.(type) {
	case *AssignStmt:
		switch lhs := x.LHS.(type) {
		case *VarRef:
			sym := u.Symbols.Lookup(lhs.Name)
			if sym != nil && sym.IsArray() {
				return &ConsistencyError{Msg: fmt.Sprintf("unit %s: assignment to whole array %s", u.Name, lhs.Name)}
			}
		case *ArrayRef:
			// checked below with the expression walk
		default:
			return &ConsistencyError{Msg: fmt.Sprintf("unit %s: invalid assignment target %s", u.Name, x.LHS)}
		}
	case *DoStmt:
		sym := u.Symbols.Lookup(x.Index)
		if sym == nil {
			sym = u.Symbols.Declare(x.Index)
		}
		if sym.Type != TypeInteger {
			return &ConsistencyError{Msg: fmt.Sprintf("unit %s: DO index %s is not INTEGER", u.Name, x.Index)}
		}
		if sym.IsArray() {
			return &ConsistencyError{Msg: fmt.Sprintf("unit %s: DO index %s is an array", u.Name, x.Index)}
		}
		if x.Body == nil {
			return &ConsistencyError{Msg: fmt.Sprintf("unit %s: DO %s has nil body", u.Name, x.Index)}
		}
	case *IfStmt:
		if x.Then == nil {
			return &ConsistencyError{Msg: fmt.Sprintf("unit %s: IF has nil THEN block", u.Name)}
		}
	}
	for _, e := range StmtExprs(s) {
		if err := u.checkExpr(e, seenExpr); err != nil {
			return err
		}
	}
	return nil
}

func (u *ProgramUnit) checkExpr(e Expr, seenExpr map[Expr]string) error {
	var err error
	WalkExpr(e, func(n Expr) bool {
		if err != nil {
			return false
		}
		if prev, dup := seenExpr[n]; dup {
			err = &ConsistencyError{Msg: fmt.Sprintf("expression %s aliased (first seen in %s, again in unit %s)", n, prev, u.Name)}
			return false
		}
		seenExpr[n] = "unit " + u.Name
		switch x := n.(type) {
		case *ArrayRef:
			sym := u.Symbols.Lookup(x.Name)
			if sym == nil {
				// A subscripted reference to an undeclared name is a
				// function call in Fortran; the parser resolves this,
				// so by IR-check time it must be declared.
				err = &ConsistencyError{Msg: fmt.Sprintf("unit %s: array %s undeclared", u.Name, x.Name)}
				return false
			}
			if sym.IsArray() && len(x.Subs) != len(sym.Dims) {
				err = &ConsistencyError{Msg: fmt.Sprintf("unit %s: %s has rank %d, referenced with %d subscripts", u.Name, x.Name, len(sym.Dims), len(x.Subs))}
				return false
			}
			if !sym.IsArray() {
				err = &ConsistencyError{Msg: fmt.Sprintf("unit %s: %s subscripted but declared scalar", u.Name, x.Name)}
				return false
			}
		case *VarRef:
			u.Symbols.Declare(x.Name)
		case *Wildcard:
			err = &ConsistencyError{Msg: fmt.Sprintf("unit %s: wildcard %s escaped into program text", u.Name, x.ID)}
			return false
		}
		return true
	})
	return err
}
