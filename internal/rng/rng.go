// Package rng implements range propagation: the determination of
// symbolic lower and upper bounds for integer variables from the
// program's control flow (PARAMETER constants, constant assignments,
// DO-loop bounds, and IF guards), feeding the expression-comparison
// capability the range test and the privatizer rely on (Section 3.3 of
// the Polaris paper).
package rng

import (
	"sort"

	"polaris/internal/ir"
	"polaris/internal/symbolic"
)

// Analyzer holds per-unit range information. Like the constant table
// built at New time, the Facts and LoopRange caches assume the unit's
// IR is not mutated while the Analyzer is in use; transformation
// passes construct a fresh Analyzer after rewriting.
type Analyzer struct {
	unit *ir.ProgramUnit
	// consts maps scalar names to their propagated symbolic values
	// (PARAMETER constants and provably single-assigned constants).
	consts map[string]*symbolic.Expr
	// facts caches Facts per target statement; the range test asks for
	// the same statement's facts once per access pair (O(n^2) times).
	// Callers must not mutate the returned slices.
	facts map[ir.Stmt][]*symbolic.Expr
	// loopRanges caches converted DO bounds per loop statement.
	loopRanges map[*ir.DoStmt]loopRange
}

type loopRange struct {
	lo, hi *symbolic.Expr
	ok     bool
}

// New analyzes a program unit. The analysis is flow-insensitive for
// constants (a scalar qualifies only when assigned exactly once,
// unconditionally, at the top level, from an expression that resolves
// to already-known constants) and flow-sensitive for guards and loop
// bounds, which are collected per target statement.
func New(u *ir.ProgramUnit) *Analyzer {
	a := &Analyzer{
		unit:       u,
		consts:     map[string]*symbolic.Expr{},
		facts:      map[ir.Stmt][]*symbolic.Expr{},
		loopRanges: map[*ir.DoStmt]loopRange{},
	}
	for _, name := range u.Symbols.Names() {
		s := u.Symbols.Lookup(name)
		if s.Param != nil {
			if c := symbolic.FromIR(s.Param, a.Resolver()); c.OK {
				a.consts[name] = c.E
			}
		}
	}
	a.propagateConstants()
	return a
}

// propagateConstants finds scalars with a unique unconditional
// top-level assignment whose RHS resolves to constants, iterating to a
// fixpoint so chains like N=10, M=N*2 resolve.
func (a *Analyzer) propagateConstants() {
	// Disqualify anything assigned more than once, assigned under
	// control flow, used as a DO index, passed to a CALL (may be
	// modified by reference), living in COMMON, or a formal.
	assignCount := map[string]int{}
	topLevel := map[string]*ir.AssignStmt{}
	disqualified := map[string]bool{}
	for _, name := range a.unit.Formals {
		disqualified[name] = true
	}
	for _, name := range a.unit.Symbols.Names() {
		if s := a.unit.Symbols.Lookup(name); s.Common != "" {
			disqualified[name] = true
		}
	}
	ir.WalkStmts(a.unit.Body, func(s ir.Stmt) bool {
		switch x := s.(type) {
		case *ir.AssignStmt:
			if v, ok := x.LHS.(*ir.VarRef); ok {
				assignCount[v.Name]++
			}
		case *ir.DoStmt:
			disqualified[x.Index] = true
		case *ir.CallStmt:
			for _, arg := range x.Args {
				if v, ok := arg.(*ir.VarRef); ok {
					disqualified[v.Name] = true
				}
			}
		}
		return true
	})
	for _, s := range a.unit.Body.Stmts {
		if x, ok := s.(*ir.AssignStmt); ok {
			if v, ok := x.LHS.(*ir.VarRef); ok {
				topLevel[v.Name] = x
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for name, st := range topLevel {
			if disqualified[name] || assignCount[name] != 1 {
				continue
			}
			if _, done := a.consts[name]; done {
				continue
			}
			conv := symbolic.FromIR(st.RHS, a.Resolver())
			if !conv.OK {
				continue
			}
			// Only adopt fully resolved values (no free variables or
			// opaque terms) — those are safe at every later point.
			if len(conv.E.Vars()) == 0 && !conv.E.HasOpaque() {
				a.consts[name] = conv.E
				changed = true
			}
		}
	}
}

// Consts returns the propagated constant table (read-only view).
func (a *Analyzer) Consts() map[string]*symbolic.Expr { return a.consts }

// Resolver returns the symbolic resolver substituting propagated
// constants. It is safe to call during construction: lookups are
// dynamic.
func (a *Analyzer) Resolver() symbolic.Resolver {
	return func(name string) *symbolic.Expr { return a.consts[name] }
}

// Conv converts an IR expression using the unit's resolver.
func (a *Analyzer) Conv(e ir.Expr) symbolic.Conv {
	return symbolic.FromIR(e, a.Resolver())
}

// LoopRange returns the closed box [lo, hi] of values the loop index
// takes (normalized so lo <= hi for constant negative steps). ok is
// false when the bounds do not convert or the step is symbolic with
// unknown sign.
func (a *Analyzer) LoopRange(d *ir.DoStmt) (lo, hi *symbolic.Expr, ok bool) {
	if r, hit := a.loopRanges[d]; hit {
		return r.lo, r.hi, r.ok
	}
	lo, hi, ok = a.loopRange(d)
	a.loopRanges[d] = loopRange{lo: lo, hi: hi, ok: ok}
	return lo, hi, ok
}

func (a *Analyzer) loopRange(d *ir.DoStmt) (lo, hi *symbolic.Expr, ok bool) {
	init := a.Conv(d.Init)
	limit := a.Conv(d.Limit)
	if !init.OK || !limit.OK {
		return nil, nil, false
	}
	step := a.Conv(d.StepOr1())
	if !step.OK {
		return nil, nil, false
	}
	c, isConst := step.E.Const()
	if !isConst || c.Sign() == 0 {
		return nil, nil, false
	}
	if c.Sign() > 0 {
		return init.E, limit.E, true
	}
	return limit.E, init.E, true
}

// Facts returns the list of expressions provably >= 0 at the target
// statement, derived from:
//
//   - enclosing IF guards (THEN branches add the guard, ELSE branches
//     its negation, for integer relational conditions);
//   - enclosing DO statements: inside a loop body the trip count is
//     positive, so limit - index >= 0, index - init >= 0 and
//     limit - init >= 0 hold (for positive constant step; mirrored for
//     negative step).
func (a *Analyzer) Facts(target ir.Stmt) []*symbolic.Expr {
	if f, hit := a.facts[target]; hit {
		return f
	}
	var facts []*symbolic.Expr
	if path, found := a.pathTo(target); found {
		for _, pe := range path {
			switch {
			case pe.do != nil:
				facts = append(facts, a.loopFacts(pe.do)...)
			case pe.ifStmt != nil:
				facts = append(facts, a.condFacts(pe.ifStmt.Cond, pe.inElse)...)
			}
		}
	}
	a.facts[target] = facts
	return facts
}

type pathElem struct {
	do     *ir.DoStmt
	ifStmt *ir.IfStmt
	inElse bool
}

func (a *Analyzer) pathTo(target ir.Stmt) ([]pathElem, bool) {
	var path []pathElem
	var walk func(b *ir.Block) bool
	walk = func(b *ir.Block) bool {
		if b == nil {
			return false
		}
		for _, s := range b.Stmts {
			if s == target {
				return true
			}
			switch x := s.(type) {
			case *ir.DoStmt:
				path = append(path, pathElem{do: x})
				if walk(x.Body) {
					return true
				}
				path = path[:len(path)-1]
			case *ir.IfStmt:
				path = append(path, pathElem{ifStmt: x})
				if walk(x.Then) {
					return true
				}
				path[len(path)-1].inElse = true
				if walk(x.Else) {
					return true
				}
				path = path[:len(path)-1]
			}
		}
		return false
	}
	return path, walk(a.unit.Body)
}

func (a *Analyzer) loopFacts(d *ir.DoStmt) []*symbolic.Expr {
	lo, hi, ok := a.LoopRange(d)
	if !ok {
		return nil
	}
	idx := symbolic.Var(d.Index)
	return []*symbolic.Expr{
		symbolic.Sub(idx, lo), // index >= lo
		symbolic.Sub(hi, idx), // index <= hi
		symbolic.Sub(hi, lo),  // the body executes: trip >= 1
	}
}

// condFacts converts a relational guard into >=0 facts. Only integer
// comparisons produce facts; negate handles the ELSE branch.
func (a *Analyzer) condFacts(cond ir.Expr, negate bool) []*symbolic.Expr {
	switch x := cond.(type) {
	case *ir.Binary:
		if x.Op == ir.OpAnd && !negate {
			return append(a.condFacts(x.L, false), a.condFacts(x.R, false)...)
		}
		if x.Op == ir.OpOr && negate {
			// .NOT.(a .OR. b) == .NOT.a .AND. .NOT.b
			return append(a.condFacts(x.L, true), a.condFacts(x.R, true)...)
		}
		if !x.Op.IsRelational() {
			return nil
		}
		if !a.isIntExpr(x.L) || !a.isIntExpr(x.R) {
			return nil
		}
		l := a.Conv(x.L)
		r := a.Conv(x.R)
		if !l.OK || !r.OK || l.IntDivApprox || r.IntDivApprox {
			return nil
		}
		op := x.Op
		if negate {
			op = negateRel(op)
		}
		d := symbolic.Sub(l.E, r.E)
		one := symbolic.Int(1)
		switch op {
		case ir.OpGe:
			return []*symbolic.Expr{d}
		case ir.OpGt:
			return []*symbolic.Expr{symbolic.Sub(d, one)}
		case ir.OpLe:
			return []*symbolic.Expr{symbolic.Neg(d)}
		case ir.OpLt:
			return []*symbolic.Expr{symbolic.Sub(symbolic.Neg(d), one)}
		case ir.OpEq:
			return []*symbolic.Expr{d, symbolic.Neg(d)}
		case ir.OpNe:
			return nil
		}
	case *ir.Unary:
		if x.Op == ir.OpNot {
			return a.condFacts(x.X, !negate)
		}
	}
	return nil
}

func negateRel(op ir.BinOp) ir.BinOp {
	switch op {
	case ir.OpEq:
		return ir.OpNe
	case ir.OpNe:
		return ir.OpEq
	case ir.OpLt:
		return ir.OpGe
	case ir.OpLe:
		return ir.OpGt
	case ir.OpGt:
		return ir.OpLe
	case ir.OpGe:
		return ir.OpLt
	}
	return op
}

func (a *Analyzer) isIntExpr(e ir.Expr) bool {
	ok := true
	ir.WalkExpr(e, func(n ir.Expr) bool {
		switch x := n.(type) {
		case *ir.ConstReal:
			ok = false
		case *ir.VarRef:
			if s := a.unit.Symbols.Lookup(x.Name); s == nil || s.Type != ir.TypeInteger {
				ok = false
			}
		case *ir.ArrayRef:
			if s := a.unit.Symbols.Lookup(x.Name); s == nil || s.Type != ir.TypeInteger {
				ok = false
			}
		case *ir.Call:
			ok = false // conservative
		}
		return ok
	})
	return ok
}

// AddFactGE folds the fact e >= 0 into the environment as variable
// bounds: for every variable v where e has the shape  +v + rest  or
// -v + rest  with v of degree one, the implied bound on v is recorded
// unless a tighter one already exists on that side. Facts that do not
// decompose are dropped (the prover works from bounds only).
func AddFactGE(env *symbolic.Env, e *symbolic.Expr) {
	set := e.Vars()
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		coeffs, ok := e.CoeffsIn(v)
		if !ok || len(coeffs) != 2 {
			continue
		}
		c, isInt := coeffs[1].ConstInt64()
		if !isInt {
			continue
		}
		b, _ := env.Lookup(v)
		switch {
		case c == 1:
			// v + rest >= 0  =>  v >= -rest
			lo := symbolic.Neg(coeffs[0])
			if better(env, lo, b.Lo, true) {
				b.Lo = lo
				env.Push(v, b)
			}
		case c == -1:
			// -v + rest >= 0  =>  v <= rest
			hi := coeffs[0]
			if better(env, hi, b.Hi, false) {
				b.Hi = hi
				env.Push(v, b)
			}
		}
	}
}

// better reports whether the candidate bound should replace the
// current one: always when none exists; when both are constants, the
// tighter wins.
func better(env *symbolic.Env, cand, cur *symbolic.Expr, isLower bool) bool {
	if cur == nil {
		return true
	}
	if s, ok := symbolic.ConstCompare(cand, cur); ok {
		if isLower {
			return s > 0
		}
		return s < 0
	}
	return false
}

// EnvForStmt builds a proof environment for the target statement:
// enclosing loop indices (innermost first) with their ranges, followed
// by bounds decomposed from guard and trip-count facts.
func (a *Analyzer) EnvForStmt(target ir.Stmt) *symbolic.Env {
	env := symbolic.NewEnv()
	loops := ir.EnclosingLoops(a.unit.Body, target)
	for i := len(loops) - 1; i >= 0; i-- {
		d := loops[i]
		lo, hi, ok := a.LoopRange(d)
		if !ok {
			continue
		}
		env.Push(d.Index, symbolic.Bound{Lo: lo, Hi: hi})
	}
	for _, f := range a.Facts(target) {
		AddFactGE(env, f)
	}
	return env
}
