package rng

import (
	"testing"

	"polaris/internal/ir"
	"polaris/internal/parser"
	"polaris/internal/symbolic"
)

func mainUnit(t *testing.T, src string) *ir.ProgramUnit {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog.Main()
}

func TestParameterConstants(t *testing.T) {
	u := mainUnit(t, `
      PROGRAM P
      INTEGER N, M
      PARAMETER (N=10, M=2*N)
      REAL A(M)
      A(1) = 0.0
      END
`)
	a := New(u)
	if c := a.Consts()["N"]; c == nil || !symbolic.Equal(c, symbolic.Int(10)) {
		t.Errorf("N = %v", c)
	}
	if c := a.Consts()["M"]; c == nil || !symbolic.Equal(c, symbolic.Int(20)) {
		t.Errorf("M = %v, want 20", c)
	}
}

func TestConstantPropagation(t *testing.T) {
	u := mainUnit(t, `
      PROGRAM P
      INTEGER N, M, K, J
      N = 10
      M = N * 3
      K = K + 1
      DO J = 1, 2
        L = 5
      END DO
      END
`)
	a := New(u)
	if c := a.Consts()["N"]; c == nil || !symbolic.Equal(c, symbolic.Int(10)) {
		t.Errorf("N = %v", c)
	}
	if c := a.Consts()["M"]; c == nil || !symbolic.Equal(c, symbolic.Int(30)) {
		t.Errorf("M = %v", c)
	}
	if a.Consts()["K"] != nil {
		t.Errorf("self-referencing K treated as constant")
	}
	if a.Consts()["L"] != nil {
		t.Errorf("conditionally assigned L treated as constant")
	}
	if a.Consts()["J"] != nil {
		t.Errorf("loop index J treated as constant")
	}
}

func TestCallDisqualifiesConstant(t *testing.T) {
	u := mainUnit(t, `
      PROGRAM P
      INTEGER N
      N = 10
      CALL TWEAK(N)
      END

      SUBROUTINE TWEAK(N)
      INTEGER N
      N = N + 1
      END
`)
	a := New(u)
	if a.Consts()["N"] != nil {
		t.Errorf("N passed to CALL treated as constant")
	}
}

func TestLoopRange(t *testing.T) {
	u := mainUnit(t, `
      PROGRAM P
      INTEGER I, J, N
      PARAMETER (N=10)
      REAL A(100)
      DO I = 1, N
        A(I) = 0.0
      END DO
      DO J = N, 1, -1
        A(J) = 1.0
      END DO
      END
`)
	a := New(u)
	loops := ir.Loops(u.Body)
	lo, hi, ok := a.LoopRange(loops[0])
	if !ok || !symbolic.Equal(lo, symbolic.Int(1)) || !symbolic.Equal(hi, symbolic.Int(10)) {
		t.Errorf("range of I = [%s, %s]", lo, hi)
	}
	// Negative step: normalized box.
	lo2, hi2, ok := a.LoopRange(loops[1])
	if !ok || !symbolic.Equal(lo2, symbolic.Int(1)) || !symbolic.Equal(hi2, symbolic.Int(10)) {
		t.Errorf("range of J = [%s, %s]", lo2, hi2)
	}
}

func TestGuardFacts(t *testing.T) {
	u := mainUnit(t, `
      SUBROUTINE S(N, A)
      INTEGER N, I
      REAL A(N)
      IF (N .GE. 1) THEN
        DO I = 1, N
          A(I) = 0.0
        END DO
      END IF
      END
`)
	a := New(u)
	loop := ir.Loops(u.Body)[0]
	target := loop.Body.Stmts[0]
	env := a.EnvForStmt(target)
	// Inside the guard and the loop: N >= 1, I in [1, N].
	if !env.ProveGE(symbolic.Sub(symbolic.Var("N"), symbolic.Int(1))) {
		t.Errorf("N >= 1 not provable inside guard")
	}
	if !env.ProveGE(symbolic.Sub(symbolic.Var("N"), symbolic.Var("I"))) {
		t.Errorf("I <= N not provable inside loop")
	}
	if !env.ProveGT(symbolic.Var("I")) {
		t.Errorf("I >= 1 not provable inside loop")
	}
}

func TestElseNegatesGuard(t *testing.T) {
	u := mainUnit(t, `
      SUBROUTINE S(N)
      INTEGER N, X
      IF (N .GT. 5) THEN
        X = 1
      ELSE
        X = 2
      END IF
      END
`)
	a := New(u)
	ifStmt := u.Body.Stmts[0].(*ir.IfStmt)
	thenEnv := a.EnvForStmt(ifStmt.Then.Stmts[0])
	elseEnv := a.EnvForStmt(ifStmt.Else.Stmts[0])
	// THEN: N >= 6; ELSE: N <= 5.
	if !thenEnv.ProveGE(symbolic.Sub(symbolic.Var("N"), symbolic.Int(6))) {
		t.Errorf("THEN branch fact missing")
	}
	if !elseEnv.ProveGE(symbolic.Sub(symbolic.Int(5), symbolic.Var("N"))) {
		t.Errorf("ELSE branch fact missing")
	}
}

func TestTripCountFact(t *testing.T) {
	u := mainUnit(t, `
      SUBROUTINE S(N, A)
      INTEGER N, I
      REAL A(N)
      DO I = 1, N
        A(I) = 0.0
      END DO
      END
`)
	a := New(u)
	loop := ir.Loops(u.Body)[0]
	env := a.EnvForStmt(loop.Body.Stmts[0])
	// Inside the body the loop executed at least once: N - 1 >= 0.
	if !env.ProveGE(symbolic.Sub(symbolic.Var("N"), symbolic.Int(1))) {
		t.Errorf("trip-count fact N >= 1 missing")
	}
}

func TestRealGuardProducesNoFacts(t *testing.T) {
	u := mainUnit(t, `
      SUBROUTINE S(X)
      REAL X
      INTEGER K
      IF (X .GT. 0.5) THEN
        K = 1
      END IF
      END
`)
	a := New(u)
	ifStmt := u.Body.Stmts[0].(*ir.IfStmt)
	facts := a.Facts(ifStmt.Then.Stmts[0])
	if len(facts) != 0 {
		t.Errorf("real-typed guard produced facts: %v", facts)
	}
}

func TestAndGuard(t *testing.T) {
	u := mainUnit(t, `
      SUBROUTINE S(N, M)
      INTEGER N, M, X
      IF (N .GE. 1 .AND. M .GE. N) THEN
        X = 1
      END IF
      END
`)
	a := New(u)
	ifStmt := u.Body.Stmts[0].(*ir.IfStmt)
	env := a.EnvForStmt(ifStmt.Then.Stmts[0])
	if !env.ProveGE(symbolic.Sub(symbolic.Var("M"), symbolic.Int(1))) {
		t.Errorf("M >= N >= 1 chain not provable")
	}
}

func TestAddFactGEMergesTighter(t *testing.T) {
	env := symbolic.NewEnv()
	AddFactGE(env, symbolic.Sub(symbolic.Var("N"), symbolic.Int(1))) // N >= 1
	AddFactGE(env, symbolic.Sub(symbolic.Var("N"), symbolic.Int(5))) // N >= 5 (tighter)
	AddFactGE(env, symbolic.Sub(symbolic.Var("N"), symbolic.Int(3))) // looser, ignored
	b, ok := env.Lookup("N")
	if !ok || b.Lo == nil {
		t.Fatalf("no bound recorded")
	}
	if !symbolic.Equal(b.Lo, symbolic.Int(5)) {
		t.Errorf("lo = %s, want 5", b.Lo)
	}
}

func TestEnvOrderingInnermostFirst(t *testing.T) {
	u := mainUnit(t, `
      SUBROUTINE S(N, A)
      INTEGER N, I, J
      REAL A(N,N)
      DO I = 1, N
        DO J = 1, I
          A(I,J) = 0.0
        END DO
      END DO
      END
`)
	a := New(u)
	inner := ir.Loops(u.Body)[1]
	env := a.EnvForStmt(inner.Body.Stmts[0])
	names := env.Names()
	if len(names) < 2 || names[0] != "J" || names[1] != "I" {
		t.Errorf("env order = %v, want J before I", names)
	}
	// Triangular fact usable: J <= I <= N.
	if !env.ProveGE(symbolic.Sub(symbolic.Var("N"), symbolic.Var("J"))) {
		t.Errorf("J <= N not provable through triangular chain")
	}
}
