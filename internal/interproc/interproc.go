// Package interproc implements interprocedural constant propagation —
// the second enabling transformation the paper names for Figure 3, and
// a piece of the "comprehensive interprocedural analysis framework"
// Section 3 says was under construction as the alternative to full
// inline expansion.
//
// The implementation specializes subroutines on constant actuals: when
// every call site passes the same integer literal for a scalar formal,
// the formal is turned into a PARAMETER constant inside the callee and
// dropped from the argument lists. Analyses of the callee then see the
// constant exactly as they would after inlining, without the code
// growth.
package interproc

import (
	"fmt"
	"sort"
	"strings"

	"polaris/internal/ir"
)

// Report describes the propagation.
type Report struct {
	// Propagated maps "CALLEE.FORMAL" to the constant value.
	Propagated map[string]int64
	// UnitSigs maps each unit this propagation mutated to a
	// deterministic signature of the exact edits applied to it: the
	// in-application-order specialization events on the unit itself
	// (formal position dropped, name, value) and, per callee it calls,
	// the in-order argument positions deleted at its call sites. A
	// unit's post-propagation IR is a pure function of its parse and
	// this edit script, so (raw source, parse context, signature)
	// identifies the post-pass unit without rendering it — which is how
	// incremental compilation keys specialized units and rewritten
	// callers by raw source. Units absent from the map left the pass
	// exactly as they entered it.
	UnitSigs map[string]string
}

// Propagate runs the specialization over the whole program, iterating
// so constants flowing through one level of calls reach deeper ones.
func Propagate(prog *ir.Program) *Report {
	rep := &Report{Propagated: map[string]int64{}}
	// The call-site index is built once: specialization re-slices the
	// Args of existing CallStmts in place and never adds or removes a
	// CALL, so the site pointers stay valid across rounds.
	sitesByName := callSiteIndex(prog)
	ev := &editLog{selfEvents: map[string][]string{}, argDrops: map[string][]string{}}
	for pass := 0; pass < 4; pass++ {
		if !propagateOnce(prog, sitesByName, ev, rep) {
			break
		}
	}
	rep.UnitSigs = ev.unitSigs(prog, sitesByName)
	return rep
}

// editLog accumulates the specialization events of one propagation in
// application order, keyed by callee.
type editLog struct {
	// selfEvents records each callee's own edits ("fi:NAME=val" —
	// formal at position fi dropped, its symbol made PARAMETER val).
	selfEvents map[string][]string
	// argDrops records, per callee, the argument positions deleted at
	// every one of its call sites ("fi=val"). Order matters: positions
	// are application-time indices, shifting as earlier drops land.
	argDrops map[string][]string
}

// unitSigs folds the event log into per-unit signatures: a unit's own
// specialization events plus, for each callee it calls (sorted), that
// callee's site-rewrite events.
func (ev *editLog) unitSigs(prog *ir.Program, sitesByName map[string][]callSite) map[string]string {
	calleesOf := map[string][]string{}
	seen := map[string]map[string]bool{}
	for name, sites := range sitesByName {
		if len(ev.argDrops[name]) == 0 {
			continue
		}
		for _, s := range sites {
			if seen[s.owner] == nil {
				seen[s.owner] = map[string]bool{}
			}
			if !seen[s.owner][name] {
				seen[s.owner][name] = true
				calleesOf[s.owner] = append(calleesOf[s.owner], name)
			}
		}
	}
	out := map[string]string{}
	add := func(unit, part string) {
		if out[unit] != "" {
			out[unit] += ";"
		}
		out[unit] += part
	}
	for _, u := range prog.Units {
		if evs := ev.selfEvents[u.Name]; len(evs) > 0 {
			add(u.Name, "self["+strings.Join(evs, ",")+"]")
		}
		names := calleesOf[u.Name]
		sort.Strings(names)
		for _, name := range names {
			add(u.Name, "call-"+name+"["+strings.Join(ev.argDrops[name], ",")+"]")
		}
	}
	return out
}

func propagateOnce(prog *ir.Program, sitesByName map[string][]callSite, ev *editLog, rep *Report) bool {
	changed := false
	for _, callee := range prog.Units {
		if callee.Kind != ir.UnitSubroutine || len(callee.Formals) == 0 {
			continue
		}
		sites := sitesByName[callee.Name]
		if len(sites) == 0 {
			continue
		}
		// Find formals receiving one identical integer literal at
		// every site, not modified inside the callee.
		for fi := 0; fi < len(callee.Formals); fi++ {
			formal := callee.Formals[fi]
			fsym := callee.Symbols.Lookup(formal)
			if fsym == nil || fsym.IsArray() || fsym.Type != ir.TypeInteger {
				continue
			}
			val, uniform := uniformConstArg(sites, fi)
			if !uniform {
				continue
			}
			if modifies(callee, formal) {
				continue
			}
			// Specialize: drop the formal, make it a PARAMETER.
			callee.Formals = append(callee.Formals[:fi], callee.Formals[fi+1:]...)
			fsym.Formal = false
			fsym.Param = ir.Int(val)
			ev.selfEvents[callee.Name] = append(ev.selfEvents[callee.Name],
				fmt.Sprintf("%d:%s=%d", fi, formal, val))
			ev.argDrops[callee.Name] = append(ev.argDrops[callee.Name],
				fmt.Sprintf("%d=%d", fi, val))
			for _, site := range sites {
				site.call.Args = append(site.call.Args[:fi], site.call.Args[fi+1:]...)
			}
			rep.Propagated[callee.Name+"."+formal] = val
			changed = true
			fi--
		}
	}
	return changed
}

// callSite is one CALL statement together with the unit containing it
// (the unit whose IR changes when the site's argument list does).
type callSite struct {
	call  *ir.CallStmt
	owner string
}

// callSiteIndex collects every CALL in the program, grouped by callee
// name, in one walk: the old per-callee scan re-walked all units for
// each of the U subroutines, O(U^2) unit walks on a megaprogram's
// hundreds of units.
func callSiteIndex(prog *ir.Program) map[string][]callSite {
	out := map[string][]callSite{}
	for _, u := range prog.Units {
		ir.WalkStmts(u.Body, func(s ir.Stmt) bool {
			if c, ok := s.(*ir.CallStmt); ok {
				out[c.Name] = append(out[c.Name], callSite{call: c, owner: u.Name})
			}
			return true
		})
	}
	return out
}

// uniformConstArg reports whether argument position fi is the same
// integer literal at every site.
func uniformConstArg(sites []callSite, fi int) (int64, bool) {
	var val int64
	for i, s := range sites {
		if fi >= len(s.call.Args) {
			return 0, false
		}
		c, ok := s.call.Args[fi].(*ir.ConstInt)
		if !ok {
			return 0, false
		}
		if i == 0 {
			val = c.Val
		} else if c.Val != val {
			return 0, false
		}
	}
	return val, true
}

// modifies reports whether the callee may write the formal: assigned,
// used as a DO index, or passed onward by reference.
func modifies(u *ir.ProgramUnit, name string) bool {
	found := false
	ir.WalkStmts(u.Body, func(s ir.Stmt) bool {
		switch x := s.(type) {
		case *ir.AssignStmt:
			if v, ok := x.LHS.(*ir.VarRef); ok && v.Name == name {
				found = true
			}
		case *ir.DoStmt:
			if x.Index == name {
				found = true
			}
		case *ir.CallStmt:
			for _, a := range x.Args {
				if v, ok := a.(*ir.VarRef); ok && v.Name == name {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
