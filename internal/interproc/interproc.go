// Package interproc implements interprocedural constant propagation —
// the second enabling transformation the paper names for Figure 3, and
// a piece of the "comprehensive interprocedural analysis framework"
// Section 3 says was under construction as the alternative to full
// inline expansion.
//
// The implementation specializes subroutines on constant actuals: when
// every call site passes the same integer literal for a scalar formal,
// the formal is turned into a PARAMETER constant inside the callee and
// dropped from the argument lists. Analyses of the callee then see the
// constant exactly as they would after inlining, without the code
// growth.
package interproc

import (
	"polaris/internal/ir"
)

// Report describes the propagation.
type Report struct {
	// Propagated maps "CALLEE.FORMAL" to the constant value.
	Propagated map[string]int64
}

// Propagate runs the specialization over the whole program, iterating
// so constants flowing through one level of calls reach deeper ones.
func Propagate(prog *ir.Program) *Report {
	rep := &Report{Propagated: map[string]int64{}}
	for pass := 0; pass < 4; pass++ {
		if !propagateOnce(prog, rep) {
			break
		}
	}
	return rep
}

func propagateOnce(prog *ir.Program, rep *Report) bool {
	changed := false
	// One walk over the whole program collects every callee's sites:
	// the old per-callee scan re-walked all units for each of the U
	// subroutines, O(U^2) unit walks on a megaprogram's hundreds of
	// units.
	sitesByName := callSiteIndex(prog)
	for _, callee := range prog.Units {
		if callee.Kind != ir.UnitSubroutine || len(callee.Formals) == 0 {
			continue
		}
		sites := sitesByName[callee.Name]
		if len(sites) == 0 {
			continue
		}
		// Find formals receiving one identical integer literal at
		// every site, not modified inside the callee.
		for fi := 0; fi < len(callee.Formals); fi++ {
			formal := callee.Formals[fi]
			fsym := callee.Symbols.Lookup(formal)
			if fsym == nil || fsym.IsArray() || fsym.Type != ir.TypeInteger {
				continue
			}
			val, uniform := uniformConstArg(sites, fi)
			if !uniform {
				continue
			}
			if modifies(callee, formal) {
				continue
			}
			// Specialize: drop the formal, make it a PARAMETER.
			callee.Formals = append(callee.Formals[:fi], callee.Formals[fi+1:]...)
			fsym.Formal = false
			fsym.Param = ir.Int(val)
			for _, site := range sites {
				site.Args = append(site.Args[:fi], site.Args[fi+1:]...)
			}
			rep.Propagated[callee.Name+"."+formal] = val
			changed = true
			fi--
		}
	}
	return changed
}

// callSiteIndex collects every CALL in the program, grouped by callee
// name, in one walk.
func callSiteIndex(prog *ir.Program) map[string][]*ir.CallStmt {
	out := map[string][]*ir.CallStmt{}
	for _, u := range prog.Units {
		ir.WalkStmts(u.Body, func(s ir.Stmt) bool {
			if c, ok := s.(*ir.CallStmt); ok {
				out[c.Name] = append(out[c.Name], c)
			}
			return true
		})
	}
	return out
}

// uniformConstArg reports whether argument position fi is the same
// integer literal at every site.
func uniformConstArg(sites []*ir.CallStmt, fi int) (int64, bool) {
	var val int64
	for i, s := range sites {
		if fi >= len(s.Args) {
			return 0, false
		}
		c, ok := s.Args[fi].(*ir.ConstInt)
		if !ok {
			return 0, false
		}
		if i == 0 {
			val = c.Val
		} else if c.Val != val {
			return 0, false
		}
	}
	return val, true
}

// modifies reports whether the callee may write the formal: assigned,
// used as a DO index, or passed onward by reference.
func modifies(u *ir.ProgramUnit, name string) bool {
	found := false
	ir.WalkStmts(u.Body, func(s ir.Stmt) bool {
		switch x := s.(type) {
		case *ir.AssignStmt:
			if v, ok := x.LHS.(*ir.VarRef); ok && v.Name == name {
				found = true
			}
		case *ir.DoStmt:
			if x.Index == name {
				found = true
			}
		case *ir.CallStmt:
			for _, a := range x.Args {
				if v, ok := a.(*ir.VarRef); ok && v.Name == name {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
