package interproc_test

import (
	"testing"

	"polaris/internal/core"
	"polaris/internal/interp"
	"polaris/internal/interproc"
	"polaris/internal/ir"
	"polaris/internal/machine"
	"polaris/internal/parser"
)

func propagate(t *testing.T, src string) (*ir.Program, *interproc.Report) {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rep := interproc.Propagate(prog)
	if err := prog.Check(); err != nil {
		t.Fatalf("inconsistent after propagation: %v\n%s", err, prog.Fortran())
	}
	return prog, rep
}

const uniformSrc = `
      PROGRAM P
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL X(64)
      INTEGER I
      DO I = 1, 64
        X(I) = 0.0
      END DO
      CALL FILL(X, 8)
      CALL FILL(X, 8)
      RESULT = X(5)
      END

      SUBROUTINE FILL(A, N)
      INTEGER N, I
      REAL A(N*N)
      DO I = 1, N*N
        A(I) = A(I) + 1.0
      END DO
      END
`

func TestUniformConstantPropagated(t *testing.T) {
	ref := runProbe(t, parser.MustParse(uniformSrc))
	prog, rep := propagate(t, uniformSrc)
	if rep.Propagated["FILL.N"] != 8 {
		t.Fatalf("N not propagated: %+v", rep.Propagated)
	}
	fill := prog.Unit("FILL")
	if len(fill.Formals) != 1 || fill.Formals[0] != "A" {
		t.Errorf("formals = %v, want [A]", fill.Formals)
	}
	if sym := fill.Symbols.Lookup("N"); sym == nil || sym.Param == nil || sym.Param.String() != "8" {
		t.Errorf("N not a PARAMETER 8: %+v", sym)
	}
	// Calls updated.
	ir.WalkStmts(prog.Main().Body, func(s ir.Stmt) bool {
		if c, ok := s.(*ir.CallStmt); ok && c.Name == "FILL" && len(c.Args) != 1 {
			t.Errorf("call args = %d, want 1", len(c.Args))
		}
		return true
	})
	if got := runProbe(t, prog); got != ref {
		t.Errorf("semantics changed: %v vs %v", got, ref)
	}
}

func TestNonUniformSkipped(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(64)
      CALL FILL(X, 4)
      CALL FILL(X, 8)
      END

      SUBROUTINE FILL(A, N)
      INTEGER N, I
      REAL A(N)
      DO I = 1, N
        A(I) = 1.0
      END DO
      END
`
	prog, rep := propagate(t, src)
	if len(rep.Propagated) != 0 {
		t.Errorf("non-uniform constant propagated: %+v", rep.Propagated)
	}
	if len(prog.Unit("FILL").Formals) != 2 {
		t.Errorf("formals changed")
	}
}

func TestVariableActualSkipped(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(64)
      INTEGER M
      M = 8
      CALL FILL(X, M)
      END

      SUBROUTINE FILL(A, N)
      INTEGER N, I
      REAL A(N)
      DO I = 1, N
        A(I) = 1.0
      END DO
      END
`
	_, rep := propagate(t, src)
	if len(rep.Propagated) != 0 {
		t.Errorf("variable actual propagated: %+v", rep.Propagated)
	}
}

func TestModifiedFormalSkipped(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(64)
      CALL BUMP(X, 5)
      END

      SUBROUTINE BUMP(A, N)
      INTEGER N
      REAL A(64)
      N = N + 1
      A(N) = 1.0
      END
`
	_, rep := propagate(t, src)
	if len(rep.Propagated) != 0 {
		t.Errorf("assigned formal propagated: %+v", rep.Propagated)
	}
}

func TestFormalPassedOnwardSkipped(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(64)
      CALL OUTER(X, 5)
      END

      SUBROUTINE OUTER(A, N)
      INTEGER N
      REAL A(64)
      CALL MUTATE(N)
      A(N) = 1.0
      END

      SUBROUTINE MUTATE(N)
      INTEGER N
      N = N * 2
      END
`
	_, rep := propagate(t, src)
	if _, bad := rep.Propagated["OUTER.N"]; bad {
		t.Errorf("formal passed by reference to a mutator was propagated")
	}
}

// The propagation must enable analyses that need the constant: a
// GCD-refutable stride that is symbolic without it.
func TestEnablesDependenceAnalysis(t *testing.T) {
	src := `
      PROGRAM P
      REAL X(300)
      CALL SPLIT(X, 2)
      END

      SUBROUTINE SPLIT(A, M)
      INTEGER M, I
      REAL A(300)
      DO I = 1, 100
        A(M*I) = A(M*I + 1) + 1.0
      END DO
      END
`
	compileAndCheck := func(interprocOn bool) bool {
		opt := core.PolarisOptions()
		opt.Inline = false // isolate the interprocedural effect
		opt.InterprocConstants = interprocOn
		res, err := core.Compile(parser.MustParse(src), opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, lr := range res.Loops {
			if lr.Unit == "SPLIT" && lr.Index == "I" {
				return lr.Parallel
			}
		}
		return false
	}
	if !compileAndCheck(true) {
		t.Errorf("loop not parallel with interprocedural constants (GCD needs M=2)")
	}
	if compileAndCheck(false) {
		t.Errorf("loop parallel without the constant (symbolic M should block GCD)")
	}
}

func runProbe(t *testing.T, prog *ir.Program) float64 {
	t.Helper()
	in := interp.New(prog, machine.Default())
	if err := in.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	v, _ := in.Probe("OUT", "RESULT")
	return v
}
