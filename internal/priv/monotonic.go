package priv

import (
	"polaris/internal/ir"
	"polaris/internal/symbolic"
)

// monotonicBound identifies the paper's monotonic-variable pattern for
// a scalar v used at atStmt: an initialization v = e0 at the top level
// of the loop body, followed by a single top-level DO in which every
// other definition of v is an unconditional-or-conditional v = v + 1.
// The value of v anywhere at or after that DO then lies in
// [e0, e0 + n*T] where n is the number of increment statements and T
// the trip count.
func (a *analyzer) monotonicBound(v string, atStmt ir.Stmt) (symbolic.Bound, bool) {
	init, incLoop, nInc, ok := a.monotonicPattern(v)
	if !ok {
		return symbolic.Bound{}, false
	}
	// The use must come at or after the incrementing DO.
	usePos := a.topIndex(atStmt)
	loopPos := a.loop.Body.IndexOf(incLoop)
	if usePos < loopPos {
		return symbolic.Bound{}, false
	}
	lo, hi, okR := a.loopRangeResolved(incLoop)
	if !okR {
		return symbolic.Bound{}, false
	}
	e0 := a.convAt(a.loop, init.RHS)
	if !e0.OK || e0.E.HasOpaque() {
		return symbolic.Bound{}, false
	}
	trip := symbolic.Add(symbolic.Sub(hi, lo), symbolic.Int(1))
	upper := symbolic.Add(e0.E, symbolic.Mul(symbolic.Int(int64(nInc)), trip))
	return symbolic.Bound{Lo: e0.E, Hi: upper}, true
}

// monotonicPattern locates the init assignment, the incrementing DO and
// the number of increment statements for scalar v. All definitions of v
// in the loop body must be the init plus v = v + 1 updates inside one
// top-level DO (the updates may be conditional).
func (a *analyzer) monotonicPattern(v string) (init *ir.AssignStmt, incLoop *ir.DoStmt, nInc int, ok bool) {
	oneInc := func(s *ir.AssignStmt) bool {
		b, isB := s.RHS.(*ir.Binary)
		if !isB || b.Op != ir.OpAdd {
			return false
		}
		l, lok := b.L.(*ir.VarRef)
		r, rok := b.R.(*ir.ConstInt)
		return lok && rok && l.Name == v && r.Val == 1
	}
	for i, top := range a.loop.Body.Stmts {
		if as, isA := top.(*ir.AssignStmt); isA {
			if lv, isV := as.LHS.(*ir.VarRef); isV && lv.Name == v {
				if init != nil {
					return nil, nil, 0, false // second init
				}
				if ir.References(as.RHS, v) {
					return nil, nil, 0, false
				}
				init = as
				continue
			}
		}
		if d, isD := top.(*ir.DoStmt); isD && init != nil && incLoop == nil {
			// Count increments; reject any other def of v inside.
			bad := false
			n := 0
			ir.WalkStmts(d.Body, func(s ir.Stmt) bool {
				switch x := s.(type) {
				case *ir.AssignStmt:
					if lv, isV := x.LHS.(*ir.VarRef); isV && lv.Name == v {
						if oneInc(x) {
							n++
						} else {
							bad = true
						}
					}
				case *ir.DoStmt:
					if x.Index == v {
						bad = true
					}
					// Increments nested in deeper DOs would multiply
					// the bound; keep the simple pattern.
					if ir.ReferencesVar(x.Body, v) {
						inner := false
						ir.WalkStmts(x.Body, func(s2 ir.Stmt) bool {
							if as2, isA2 := s2.(*ir.AssignStmt); isA2 {
								if lv2, ok2 := as2.LHS.(*ir.VarRef); ok2 && lv2.Name == v {
									inner = true
								}
							}
							return true
						})
						if inner {
							bad = true
						}
					}
				case *ir.CallStmt:
					for _, arg := range x.Args {
						if vr, isV := arg.(*ir.VarRef); isV && vr.Name == v {
							bad = true
						}
					}
				}
				return !bad
			})
			if bad {
				return nil, nil, 0, false
			}
			if n > 0 {
				incLoop = d
				nInc = n
			}
			continue
		}
		// Any other def of v outside the pattern disqualifies.
		defFound := false
		ir.WalkStmts(ir.NewBlock(top), func(s ir.Stmt) bool {
			if as, isA := s.(*ir.AssignStmt); isA && s != init {
				if lv, isV := as.LHS.(*ir.VarRef); isV && lv.Name == v {
					defFound = true
				}
			}
			return !defFound
		})
		if defFound && (incLoop == nil || i != a.loop.Body.IndexOf(incLoop)) {
			return nil, nil, 0, false
		}
	}
	if init == nil || incLoop == nil {
		return nil, nil, 0, false
	}
	return init, incLoop, nInc, true
}

// compressRegion recognizes the compress idiom of the paper's Figure 5:
//
//	P = e0
//	DO K ...
//	  IF (...) THEN
//	    P = P + 1
//	    ARR(P) = <value>
//	  END IF
//	END DO
//
// The write covers exactly the dense prefix [e0+1, P] where P is the
// scalar's final value (stable after the loop, since no later
// definitions exist by the monotonic pattern).
func (a *analyzer) compressRegion(w *region) (dimRange, bool) {
	if len(w.subs) != 1 {
		return dimRange{}, false
	}
	p, isVar := w.subs[0].(*ir.VarRef)
	if !isVar || !a.assignedInBody(p.Name) {
		return dimRange{}, false
	}
	init, _, nInc, ok := a.monotonicPattern(p.Name)
	if !ok || nInc != 1 {
		return dimRange{}, false
	}
	// The increment must immediately precede the write in its block.
	if !a.incImmediatelyBefore(w.stmt, p.Name) {
		return dimRange{}, false
	}
	e0 := a.convAt(a.loop, init.RHS)
	if !e0.OK || e0.E.HasOpaque() {
		return dimRange{}, false
	}
	lo := symbolic.Add(e0.E, symbolic.Int(1))
	hi := symbolic.Var(p.Name) // final value of the monotonic scalar
	return dimRange{lo: lo, hi: hi, dense: true, ok: true}, true
}

// incImmediatelyBefore checks that "v = v + 1" is the statement
// directly before target in its containing block.
func (a *analyzer) incImmediatelyBefore(target ir.Stmt, v string) bool {
	found := false
	var scan func(b *ir.Block) bool
	scan = func(b *ir.Block) bool {
		for i, s := range b.Stmts {
			if s == target {
				if i == 0 {
					return true
				}
				prev, isA := b.Stmts[i-1].(*ir.AssignStmt)
				if !isA {
					return true
				}
				if lv, isV := prev.LHS.(*ir.VarRef); isV && lv.Name == v {
					if bx, isB := prev.RHS.(*ir.Binary); isB && bx.Op == ir.OpAdd {
						if l, lok := bx.L.(*ir.VarRef); lok && l.Name == v {
							if c, cok := bx.R.(*ir.ConstInt); cok && c.Val == 1 {
								found = true
							}
						}
					}
				}
				return true
			}
			switch x := s.(type) {
			case *ir.DoStmt:
				if scan(x.Body) {
					return true
				}
			case *ir.IfStmt:
				if scan(x.Then) {
					return true
				}
				if x.Else != nil && scan(x.Else) {
					return true
				}
			}
		}
		return false
	}
	scan(a.loop.Body)
	return found
}

// addMonotonicFacts pushes monotonic bounds for loop-variant scalars
// occurring free in either region's bounds, so containment proofs like
// P <= I-1 go through.
func (a *analyzer) addMonotonicFacts(env *symbolic.Env, w, r *region) {
	seen := map[string]bool{}
	addFrom := func(e *symbolic.Expr, at ir.Stmt) {
		if e == nil {
			return
		}
		for v := range e.Vars() {
			if seen[v] || !a.assignedInBody(v) {
				continue
			}
			seen[v] = true
			if mb, ok := a.monotonicBound(v, at); ok {
				env.Push(v, mb)
			}
		}
	}
	for _, d := range w.dims {
		addFrom(d.lo, w.stmt)
		addFrom(d.hi, w.stmt)
	}
	for _, d := range r.dims {
		addFrom(d.lo, r.stmt)
		addFrom(d.hi, r.stmt)
	}
}

// indexedReadRange handles reads subscripted by an index array (the
// paper's A(IND(L))): if the last preceding write to the index array
// densely covers the read's index region, the read's element range is
// that write's value range — "statically assigned symbolic arrays".
func (a *analyzer) indexedReadRange(r *region, e *symbolic.Expr, env *symbolic.Env) (dimRange, bool) {
	atoms := e.OpaqueAtoms()
	if len(atoms) != 1 {
		return dimRange{}, false
	}
	var atom symbolic.Atom
	for _, at := range atoms {
		atom = at
	}
	if atom.Call || len(atom.Args) != 1 {
		return dimRange{}, false
	}
	// e must be exactly the atom (coefficient one, nothing else).
	if !symbolic.Equal(e, symbolic.OpaqueAtom(atom)) {
		return dimRange{}, false
	}
	// Index region of the read: range of the atom argument.
	arg := atom.Args[0]
	if arg.HasOpaque() {
		return dimRange{}, false
	}
	argMin, argMax := arg, arg
	for i := len(r.chain) - 1; i >= 0; i-- {
		v := r.chain[i].Index
		if !argMin.ContainsVar(v) && !argMax.ContainsVar(v) {
			continue
		}
		var ok bool
		argMax, ok = env.MaxOver(argMax, v)
		if !ok {
			return dimRange{}, false
		}
		argMin, ok = env.MinOver(argMin, v)
		if !ok {
			return dimRange{}, false
		}
	}
	// Find the last write to the index array before the read.
	wStar, vr, ok := a.lastIndexWrite(atom.Name, r)
	if !ok {
		return dimRange{}, false
	}
	// Its region must contain the read's index region.
	wEnv := a.regionEnv(r)
	for v := range argMin.Vars() {
		if a.assignedInBody(v) {
			if mb, okM := a.monotonicBound(v, r.stmt); okM {
				wEnv.Push(v, mb)
			}
		}
	}
	if !wEnv.ProveGE(symbolic.Sub(argMin, wStar.lo)) || !wEnv.ProveGE(symbolic.Sub(wStar.hi, argMax)) {
		return dimRange{}, false
	}
	return vr, true
}

// lastIndexWrite finds the final write to array name preceding the read
// region r, computes its covering region (compress or dense), and the
// min/max of the values it stores.
func (a *analyzer) lastIndexWrite(name string, r *region) (dimRange, dimRange, bool) {
	var last *region
	var walk func(b *ir.Block, chain []*ir.DoStmt, cond bool) bool
	walk = func(b *ir.Block, chain []*ir.DoStmt, cond bool) bool {
		for _, s := range b.Stmts {
			if s == r.stmt {
				return true
			}
			switch x := s.(type) {
			case *ir.AssignStmt:
				if ar, ok := x.LHS.(*ir.ArrayRef); ok && ar.Name == name {
					last = &region{stmt: s, chain: chain, conditional: cond, subs: ar.Subs}
				}
			case *ir.DoStmt:
				if ir.ContainsStmt(x.Body, r.stmt) {
					return true // read nested here: stop before entering
				}
				if walk(x.Body, append(append([]*ir.DoStmt{}, chain...), x), cond) {
					return true
				}
			case *ir.IfStmt:
				if walk(x.Then, chain, true) {
					return true
				}
				if x.Else != nil && walk(x.Else, chain, true) {
					return true
				}
			}
		}
		return false
	}
	walk(a.loop.Body, nil, false)
	if last == nil {
		return dimRange{}, dimRange{}, false
	}
	// Covering region of the last write.
	var cover dimRange
	if cr, ok := a.compressRegion(last); ok {
		cover = cr
	} else if !last.conditional {
		a.computeRegion(last, true)
		if len(last.dims) != 1 || !last.dims[0].ok || !last.dims[0].dense {
			return dimRange{}, dimRange{}, false
		}
		cover = last.dims[0]
	} else {
		return dimRange{}, dimRange{}, false
	}
	// Value range of what it stores.
	as := last.stmt.(*ir.AssignStmt)
	vc := a.convAt(as, as.RHS)
	if !vc.OK || vc.E.HasOpaque() {
		return dimRange{}, dimRange{}, false
	}
	env := a.regionEnv(last)
	vMin, vMax := vc.E, vc.E
	for i := len(last.chain) - 1; i >= 0; i-- {
		v := last.chain[i].Index
		if !vMin.ContainsVar(v) && !vMax.ContainsVar(v) {
			continue
		}
		var ok bool
		vMax, ok = env.MaxOver(vMax, v)
		if !ok {
			return dimRange{}, dimRange{}, false
		}
		vMin, ok = env.MinOver(vMin, v)
		if !ok {
			return dimRange{}, dimRange{}, false
		}
	}
	// Loop-variant scalars in the value (none in the BDNA pattern) are
	// not supported.
	for v := range vMin.Vars() {
		if a.assignedInBody(v) {
			return dimRange{}, dimRange{}, false
		}
	}
	for v := range vMax.Vars() {
		if a.assignedInBody(v) {
			return dimRange{}, dimRange{}, false
		}
	}
	return cover, dimRange{lo: vMin, hi: vMax, ok: true}, true
}
