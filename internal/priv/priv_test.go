package priv

import (
	"testing"

	"polaris/internal/gsa"
	"polaris/internal/ir"
	"polaris/internal/parser"
	"polaris/internal/rng"
)

func analyzeFirstLoop(t *testing.T, src string) (*ir.ProgramUnit, *Result) {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u := prog.Main()
	loop := ir.OuterLoops(u.Body)[0]
	return u, Analyze(u, rng.New(u), loop)
}

func has(list []string, name string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

func TestScalarTemporaryPrivate(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, A, B)
      INTEGER N, I
      REAL A(N), B(N), T
      DO I = 1, N
        T = B(I) * 2.0
        A(I) = T + 1.0
      END DO
      END
`)
	if !has(res.PrivateScalars, "T") {
		t.Errorf("T not privatized: %+v", res)
	}
	if has(res.LastValue, "T") {
		t.Errorf("dead T needs last value?")
	}
}

func TestScalarUpwardExposedBlocked(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, A)
      INTEGER N, I
      REAL A(N), T
      T = 0.0
      DO I = 1, N
        A(I) = T
        T = A(I) * 2.0
      END DO
      END
`)
	if has(res.PrivateScalars, "T") {
		t.Errorf("upward-exposed T wrongly privatized")
	}
	if _, blocked := res.Blocked["T"]; !blocked {
		t.Errorf("T not reported blocked")
	}
}

func TestScalarLiveOutLastValue(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, A, T)
      INTEGER N, I
      REAL A(N), T
      DO I = 1, N
        T = A(I) * 2.0
        A(I) = T
      END DO
      END
`)
	// T is a formal: live out; definitely assigned each iteration.
	if !has(res.PrivateScalars, "T") || !has(res.LastValue, "T") {
		t.Errorf("live-out T not lastprivate: %+v", res)
	}
}

func TestScalarConditionalLiveOutBlocked(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, A, T)
      INTEGER N, I
      REAL A(N), T
      DO I = 1, N
        IF (A(I) .GT. 0.0) THEN
          T = A(I)
        END IF
        A(I) = 1.0
      END DO
      END
`)
	if has(res.PrivateScalars, "T") {
		t.Errorf("conditionally-assigned live-out T wrongly privatized")
	}
}

func TestConditionalDeadScalarPrivate(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, A)
      INTEGER N, I
      REAL A(N), T
      DO I = 1, N
        IF (A(I) .GT. 0.0) THEN
          T = A(I) * 3.0
          A(I) = T
        END IF
      END DO
      END
`)
	// T's use is dominated by its def (same branch); T dead after loop.
	if !has(res.PrivateScalars, "T") {
		t.Errorf("branch-local T not privatized: %+v", res.Blocked)
	}
}

func TestInnerIndexAlwaysPrivate(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, A)
      INTEGER N, I, J
      REAL A(N,N)
      DO I = 1, N
        DO J = 1, N
          A(J,I) = 0.0
        END DO
      END DO
      END
`)
	if !has(res.PrivateScalars, "J") {
		t.Errorf("inner index J not private")
	}
}

func TestArrayWorkspacePrivate(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, B, C)
      INTEGER N, I, J, K
      REAL B(N,N), C(N,N), W(1000)
      DO I = 1, N
        DO J = 1, N
          W(J) = B(J,I) * 2.0
        END DO
        DO K = 1, N
          C(K,I) = W(K) + 1.0
        END DO
      END DO
      END
`)
	if !has(res.PrivateArrays, "W") {
		t.Errorf("work array W not privatized: blocked=%v", res.Blocked)
	}
}

// The paper's Figure 4: proving the use region A(1:M*P) inside the
// definition region A(1:MP) needs the GSA backward substitution
// MP -> M*P.
func TestFigure4GSARegionProof(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(M, P, B, C)
      INTEGER M, P, MP, I, J, K
      REAL A(10000), B(10000), C(10000)
      MP = M * P
      DO I = 1, 100
        DO J = 1, MP
          A(J) = B(J) + 1.0
        END DO
        DO K = 1, M*P
          C(K) = A(K) * 2.0
        END DO
      END DO
      END
`)
	if !has(res.PrivateArrays, "A") {
		t.Errorf("Figure 4 array A not privatized: blocked=%v", res.Blocked)
	}
}

func TestRegionNotCoveredBlocked(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, B, C)
      INTEGER N, I, J, K
      REAL B(N,N), C(N,N), W(1000)
      DO I = 1, N
        DO J = 2, N
          W(J) = B(J,I)
        END DO
        DO K = 1, N
          C(K,I) = W(K)
        END DO
      END DO
      END
`)
	// W(1) is read but never written in the iteration.
	if has(res.PrivateArrays, "W") {
		t.Errorf("under-covered W wrongly privatized")
	}
}

func TestLiveOutArrayBlocked(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, B, W)
      INTEGER N, I, J
      REAL B(N,N), W(N)
      DO I = 1, N
        DO J = 1, N
          W(J) = B(J,I)
        END DO
      END DO
      END
`)
	// W is a formal: visible after the loop.
	if has(res.PrivateArrays, "W") {
		t.Errorf("live-out W wrongly privatized")
	}
}

func TestStridedWriteNotDense(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, B, C)
      INTEGER N, I, J, K
      REAL B(N,N), C(N,N), W(1000)
      DO I = 1, N
        DO J = 1, N
          W(2*J) = B(J,I)
        END DO
        DO K = 1, N
          C(K,I) = W(K)
        END DO
      END DO
      END
`)
	if has(res.PrivateArrays, "W") {
		t.Errorf("strided (non-dense) write wrongly treated as covering")
	}
}

func TestReadBeforeWriteSameSubscriptOK(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, B)
      INTEGER N, I, J
      REAL B(N,N), W(1000)
      DO I = 1, N
        DO J = 1, N
          W(J) = B(J,I)
          B(J,I) = W(J) + 1.0
        END DO
      END DO
      END
`)
	// W(J) read after W(J) write in the same inner iteration: private.
	if !has(res.PrivateArrays, "W") {
		t.Errorf("same-subscript read-after-write not privatized: %v", res.Blocked)
	}
}

func TestForwardReadInSameLoopBlocked(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE S(N, B, C)
      INTEGER N, I, J
      REAL B(N,N), C(N,N), W(1000)
      DO I = 1, N
        DO J = 1, N
          W(J) = B(J,I)
          C(J,I) = W(N-J+1)
        END DO
      END DO
      END
`)
	// W(N-J+1) reads elements written by LATER inner iterations:
	// not dominated by a same-iteration def; must not privatize.
	if has(res.PrivateArrays, "W") {
		t.Errorf("forward-reaching read wrongly privatized")
	}
}

// The paper's Figure 5 (BDNA): privatization of R, P, M, IND and A,
// requiring the monotonic-variable analysis for P and the
// statically-assigned-index-array analysis for A(IND(L)).
func TestFigure5BDNA(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      SUBROUTINE BDNA(N, X, Y, Z, W, RCUTS)
      INTEGER N, I, J, K, L, P, M
      REAL X(N,N), Y(N,N), A(1000), R, W, Z, RCUTS
      INTEGER IND(1000)
      DO I = 2, N
        DO J = 1, I - 1
          IND(J) = 0
          A(J) = X(I,J) - Y(I,J)
          R = A(J) + W
          IF (R .LT. RCUTS) IND(J) = 1
        END DO
        P = 0
        DO K = 1, I - 1
          IF (IND(K) .NE. 0) THEN
            P = P + 1
            IND(P) = K
          END IF
        END DO
        DO L = 1, P
          M = IND(L)
          X(I,L) = A(M) + Z
        END DO
      END DO
      END
`)
	for _, want := range []string{"R", "P", "M"} {
		if !has(res.PrivateScalars, want) {
			t.Errorf("scalar %s not privatized (blocked: %v)", want, res.Blocked)
		}
	}
	for _, want := range []string{"IND", "A"} {
		if !has(res.PrivateArrays, want) {
			t.Errorf("array %s not privatized (blocked: %v)", want, res.Blocked)
		}
	}
}

func TestMonotonicBoundPattern(t *testing.T) {
	prog, err := parser.ParseProgram(`
      SUBROUTINE S(N, IND, OUT)
      INTEGER N, I, K, P, IND(N), OUT(N)
      DO I = 1, N
        P = 0
        DO K = 1, N
          IF (IND(K) .GT. 0) THEN
            P = P + 1
          END IF
        END DO
        OUT(I) = P
      END DO
      END
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u := prog.Main()
	loop := ir.OuterLoops(u.Body)[0]
	a := &analyzer{unit: u, ranges: rng.New(u), gsa: gsa.New(u), loop: loop}
	use := loop.Body.Stmts[2]
	b, ok := a.monotonicBound("P", use)
	if !ok {
		t.Fatalf("monotonic pattern not recognized")
	}
	if b.Lo.String() != "0" {
		t.Errorf("lo = %s, want 0", b.Lo)
	}
	if b.Hi.String() != "N^1" {
		t.Errorf("hi = %s, want N", b.Hi)
	}
}

func TestArrayPassedToCallBlocked(t *testing.T) {
	_, res := analyzeFirstLoop(t, `
      PROGRAM P1
      INTEGER I
      REAL W(100)
      DO I = 1, 10
        W(1) = 1.0
        CALL F(W)
      END DO
      END

      SUBROUTINE F(W)
      REAL W(100)
      W(2) = W(1)
      END
`)
	if has(res.PrivateArrays, "W") {
		t.Errorf("array passed to CALL wrongly privatized")
	}
}
