package priv

import (
	"fmt"
	"sort"

	"polaris/internal/ir"
	"polaris/internal/rng"
	"polaris/internal/symbolic"
)

// region is the symbolic extent of one array access, per dimension.
type region struct {
	dims []dimRange
	// stmt and chain locate the access for ordering checks.
	stmt  ir.Stmt
	chain []*ir.DoStmt // inner loops (inside the target) enclosing the access
	// conditional marks accesses under an IF inside the body.
	conditional bool
	subs        []ir.Expr
}

type dimRange struct {
	lo, hi *symbolic.Expr
	// dense marks write regions that cover every element of [lo,hi]
	// (unit-stride in exactly one chain variable, or a unit-step
	// monotonic scalar subscript).
	dense bool
	ok    bool
}

// arrays runs region-based privatization for every array written in the
// loop body.
func (a *analyzer) arrays(res *Result) {
	writes, reads := a.collectArrayAccesses()
	names := map[string]bool{}
	for n := range writes {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		if reason, ok := a.arrayPrivatizable(name, writes[name], reads[name]); ok {
			res.PrivateArrays = append(res.PrivateArrays, name)
		} else {
			res.Blocked[name] = reason
		}
	}
}

// collectArrayAccesses gathers write and read accesses per array with
// their loop chains and conditionality.
func (a *analyzer) collectArrayAccesses() (writes, reads map[string][]*region) {
	writes = map[string][]*region{}
	reads = map[string][]*region{}
	var walk func(b *ir.Block, chain []*ir.DoStmt, cond bool)
	addRead := func(e ir.Expr, s ir.Stmt, chain []*ir.DoStmt, cond bool) {
		ir.WalkExpr(e, func(n ir.Expr) bool {
			if ar, ok := n.(*ir.ArrayRef); ok {
				reads[ar.Name] = append(reads[ar.Name], &region{stmt: s, chain: chain, conditional: cond, subs: ar.Subs})
			}
			return true
		})
	}
	walk = func(b *ir.Block, chain []*ir.DoStmt, cond bool) {
		for _, s := range b.Stmts {
			switch x := s.(type) {
			case *ir.AssignStmt:
				if ar, ok := x.LHS.(*ir.ArrayRef); ok {
					writes[ar.Name] = append(writes[ar.Name], &region{stmt: s, chain: chain, conditional: cond, subs: ar.Subs})
					for _, sub := range ar.Subs {
						addRead(sub, s, chain, cond)
					}
				}
				addRead(x.RHS, s, chain, cond)
			case *ir.IfStmt:
				addRead(x.Cond, s, chain, cond)
				walk(x.Then, chain, true)
				if x.Else != nil {
					walk(x.Else, chain, true)
				}
			case *ir.DoStmt:
				addRead(x.Init, s, chain, cond)
				addRead(x.Limit, s, chain, cond)
				if x.Step != nil {
					addRead(x.Step, s, chain, cond)
				}
				walk(x.Body, append(append([]*ir.DoStmt{}, chain...), x), cond)
			case *ir.CallStmt:
				for _, arg := range x.Args {
					if v, ok := arg.(*ir.VarRef); ok {
						if sym := a.unit.Symbols.Lookup(v.Name); sym != nil && sym.IsArray() {
							// Whole array passed by reference: both.
							writes[v.Name] = append(writes[v.Name], &region{stmt: s, chain: chain, conditional: cond})
							reads[v.Name] = append(reads[v.Name], &region{stmt: s, chain: chain, conditional: cond})
							continue
						}
					}
					addRead(arg, s, chain, cond)
				}
			}
		}
	}
	walk(a.loop.Body, nil, false)
	return writes, reads
}

// arrayPrivatizable decides privatizability of one array.
func (a *analyzer) arrayPrivatizable(name string, writes, reads []*region) (string, bool) {
	if a.liveAfterLoop(name) {
		return "array is live after the loop (copy-out not provable)", false
	}
	for _, w := range writes {
		if w.subs == nil {
			return "whole array passed to CALL in loop body", false
		}
	}
	// Compute regions for covering writes: unconditional dense writes,
	// plus the compress idiom (conditional write through a unit-step
	// monotonic scalar, Figure 5).
	var covers []*region
	for _, w := range writes {
		if dr, ok := a.compressRegion(w); ok {
			w.dims = []dimRange{dr}
			covers = append(covers, w)
			continue
		}
		if w.conditional {
			continue
		}
		a.computeRegion(w, true)
		usable := true
		for _, d := range w.dims {
			if !d.ok || !d.dense {
				usable = false
			}
		}
		if usable {
			covers = append(covers, w)
		}
	}
	// Every read must be covered by an earlier covering write.
	for _, r := range reads {
		a.computeRegion(r, false)
		covered := false
		for _, w := range covers {
			if a.precedes(w, r) && a.contains(w, r) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Sprintf("read of %s not covered by a same-iteration definition", name), false
		}
	}
	return "", true
}

// computeRegion fills in the per-dimension symbolic ranges of an
// access. Write regions additionally establish density.
func (a *analyzer) computeRegion(r *region, isWrite bool) {
	if r.dims != nil {
		return
	}
	r.dims = make([]dimRange, len(r.subs))
	env := a.regionEnv(r)
	chainVars := map[string]bool{}
	for _, d := range r.chain {
		chainVars[d.Index] = true
	}
	usedVars := map[string]bool{}
	for i, sub := range r.subs {
		r.dims[i] = a.dimRangeOf(r, sub, env, chainVars, usedVars, isWrite)
	}
}

// dimRangeOf computes the range of one subscript over the access's
// chain, resolving loop-variant scalars with GSA and monotonic-variable
// analysis where possible.
func (a *analyzer) dimRangeOf(r *region, sub ir.Expr, env *symbolic.Env, chainVars, usedVars map[string]bool, isWrite bool) dimRange {
	var conv symbolic.Conv
	if isWrite {
		conv = a.convAt(r.stmt, sub)
	} else {
		conv = a.convAtRead(r.stmt, sub)
	}
	if !conv.OK {
		return dimRange{}
	}
	e := conv.E
	// Resolve loop-variant free scalars: monotonic bound (the paper's
	// P in BDNA) or fail.
	for v := range e.Vars() {
		if chainVars[v] || !a.assignedInBody(v) {
			continue
		}
		if isWrite {
			// Loop-variant scalar subscripts never qualify as generic
			// covering writes (the compress idiom handles the dense
			// case separately).
			return dimRange{}
		}
		mb, ok := a.monotonicBound(v, r.stmt)
		if !ok {
			return dimRange{}
		}
		env.Push(v, mb)
		chainVars[v] = true // treat as a ranged variable for elimination
		defer delete(chainVars, v)
	}
	// Opaque atoms (index arrays): for reads, try the value-range
	// analysis of statically assigned symbolic arrays.
	if e.HasOpaque() {
		if isWrite {
			return dimRange{}
		}
		vr, ok := a.indexedReadRange(r, e, env)
		if !ok {
			return dimRange{}
		}
		return vr
	}
	// Eliminate chain variables innermost-first.
	elim := a.elimOrder(r, chainVars)
	min, max := e, e
	for _, v := range elim {
		if !min.ContainsVar(v) && !max.ContainsVar(v) {
			continue
		}
		var ok bool
		if max.ContainsVar(v) {
			max, ok = env.MaxOver(max, v)
			if !ok {
				return dimRange{}
			}
		}
		if min.ContainsVar(v) {
			min, ok = env.MinOver(min, v)
			if !ok {
				return dimRange{}
			}
		}
	}
	dense := false
	if isWrite {
		dense = a.isDense(e, elim, usedVars)
	}
	return dimRange{lo: min, hi: max, dense: dense, ok: true}
}

// isDense checks unit-stride coverage: the subscript depends on at most
// one elimination variable, with coefficient +-1 and degree one, and
// that variable is not reused by another dimension.
func (a *analyzer) isDense(e *symbolic.Expr, elim []string, usedVars map[string]bool) bool {
	var dep []string
	for _, v := range elim {
		if e.ContainsVar(v) {
			dep = append(dep, v)
		}
	}
	if len(dep) == 0 {
		return true // constant in the chain: single element, trivially dense
	}
	if len(dep) != 1 {
		return false
	}
	v := dep[0]
	if usedVars[v] {
		return false
	}
	coeffs, ok := e.CoeffsIn(v)
	if !ok || len(coeffs) != 2 {
		return false
	}
	c, isC := coeffs[1].Const()
	if !isC {
		return false
	}
	one := c.Num().Int64()
	if !c.IsInt() || (one != 1 && one != -1) {
		return false
	}
	usedVars[v] = true
	return true
}

// elimOrder lists the access's ranged variables innermost-first.
func (a *analyzer) elimOrder(r *region, chainVars map[string]bool) []string {
	var out []string
	for i := len(r.chain) - 1; i >= 0; i-- {
		if r.chain[i] == nil {
			continue
		}
		out = append(out, r.chain[i].Index)
	}
	// Monotonic scalars pushed into chainVars but not in chain:
	for v := range chainVars {
		found := false
		for _, o := range out {
			if o == v {
				found = true
			}
		}
		if !found {
			out = append(out, v)
		}
	}
	return out
}

// regionEnv builds the proof environment at the access: chain loop
// bounds innermost-first, then enclosing context facts.
func (a *analyzer) regionEnv(r *region) *symbolic.Env {
	env := symbolic.NewEnv()
	for i := len(r.chain) - 1; i >= 0; i-- {
		d := r.chain[i]
		if d == nil {
			continue
		}
		lo, hi, ok := a.loopRangeResolved(d)
		if !ok {
			continue
		}
		env.Push(d.Index, symbolic.Bound{Lo: lo, Hi: hi})
	}
	for _, f := range a.ranges.Facts(r.stmt) {
		rng.AddFactGE(env, f)
	}
	return env
}

// loopRangeResolved converts loop bounds resolving pre-loop scalar
// values through GSA (so DO J = 1, MP sees MP = M*P — Figure 4).
func (a *analyzer) loopRangeResolved(d *ir.DoStmt) (lo, hi *symbolic.Expr, ok bool) {
	step := a.ranges.Conv(d.StepOr1())
	if !step.OK {
		return nil, nil, false
	}
	c, isC := step.E.Const()
	if !isC || c.Sign() == 0 {
		return nil, nil, false
	}
	init := a.convAt(d, d.Init)
	limit := a.convAt(d, d.Limit)
	if !init.OK || !limit.OK {
		return nil, nil, false
	}
	if c.Sign() > 0 {
		return init.E, limit.E, true
	}
	return limit.E, init.E, true
}

// convAt converts an expression resolving names through propagated
// constants and then GSA values at the statement.
func (a *analyzer) convAt(at ir.Stmt, e ir.Expr) symbolic.Conv {
	return symbolic.FromIR(e, func(name string) *symbolic.Expr {
		if c := a.ranges.Consts()[name]; c != nil {
			return c
		}
		if !a.assignedInBody(name) {
			// Loop-invariant: resolve a pre-loop definition if it is a
			// closed expression (MP = M*P), else keep the symbol.
			v := a.gsa.ValueBefore(a.loop, name, 6)
			if !v.HasOpaque() && !symbolic.Equal(v, symbolic.Var(name)) {
				return v
			}
		}
		return nil
	})
}

// convAtRead additionally resolves loop-variant scalars through their
// GSA value at the statement itself, catching chains like M = IND(L)
// (Figure 5). Values that resolve only to control-flow gates stay free
// so the monotonic-bound analysis can take over.
func (a *analyzer) convAtRead(at ir.Stmt, e ir.Expr) symbolic.Conv {
	return symbolic.FromIR(e, func(name string) *symbolic.Expr {
		if c := a.ranges.Consts()[name]; c != nil {
			return c
		}
		if a.assignedInBody(name) {
			v := a.gsa.ValueBefore(at, name, 4)
			if !symbolic.Equal(v, symbolic.Var(name)) && !hasGate(v) {
				return v
			}
			return nil
		}
		v := a.gsa.ValueBefore(a.loop, name, 6)
		if !v.HasOpaque() && !symbolic.Equal(v, symbolic.Var(name)) {
			return v
		}
		return nil
	})
}

// hasGate reports whether the value contains a GSA gating atom
// (zero-argument non-call opaque).
func hasGate(e *symbolic.Expr) bool {
	for _, atom := range e.OpaqueAtoms() {
		if !atom.Call && len(atom.Args) == 0 {
			return true
		}
		for _, arg := range atom.Args {
			if hasGate(arg) {
				return true
			}
		}
	}
	return false
}

func (a *analyzer) assignedInBody(name string) bool {
	found := false
	ir.WalkStmts(a.loop.Body, func(s ir.Stmt) bool {
		switch x := s.(type) {
		case *ir.AssignStmt:
			if v, ok := x.LHS.(*ir.VarRef); ok && v.Name == name {
				found = true
			}
		case *ir.DoStmt:
			if x.Index == name {
				found = true
			}
		case *ir.CallStmt:
			for _, arg := range x.Args {
				if v, ok := arg.(*ir.VarRef); ok && v.Name == name {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// precedes orders two accesses in single-iteration execution: the
// write's top-level position must be before the read's, or — within the
// same innermost loop — the write statement must come first with a
// structurally identical subscript (the same element, written then
// read).
func (a *analyzer) precedes(w, r *region) bool {
	wPos, rPos := a.topIndex(w.stmt), a.topIndex(r.stmt)
	if wPos < 0 || rPos < 0 {
		return false
	}
	if wPos < rPos {
		return true
	}
	if wPos > rPos {
		return false
	}
	// Same top-level construct: require same chain, write first, and
	// identical subscripts (sound: element written this iteration
	// before being read).
	if len(w.chain) != len(r.chain) {
		return false
	}
	for i := range w.chain {
		if w.chain[i] != r.chain[i] {
			return false
		}
	}
	if len(w.subs) != len(r.subs) {
		return false
	}
	for i := range w.subs {
		if !ir.Equal(w.subs[i], r.subs[i]) {
			return false
		}
	}
	return a.stmtBefore(w.stmt, r.stmt) || w.stmt == r.stmt && true
}

// stmtBefore reports source order within the loop body.
func (a *analyzer) stmtBefore(x, y ir.Stmt) bool {
	if x == y {
		return false
	}
	seenX := false
	before := false
	ir.WalkStmts(a.loop.Body, func(s ir.Stmt) bool {
		if s == x {
			seenX = true
		}
		if s == y && seenX {
			before = true
		}
		return true
	})
	return before
}

// topIndex returns the index of the top-level statement of the loop
// body containing s.
func (a *analyzer) topIndex(s ir.Stmt) int {
	for i, top := range a.loop.Body.Stmts {
		if top == s {
			return i
		}
		contains := false
		switch x := top.(type) {
		case *ir.DoStmt:
			contains = ir.ContainsStmt(x.Body, s)
		case *ir.IfStmt:
			contains = ir.ContainsStmt(x.Then, s) || (x.Else != nil && ir.ContainsStmt(x.Else, s))
		}
		if contains {
			return i
		}
	}
	return -1
}

// contains proves region containment per dimension: w.lo <= r.lo and
// r.hi <= w.hi, under the merged environments.
func (a *analyzer) contains(w, r *region) bool {
	if len(w.dims) != len(r.dims) {
		return false
	}
	env := a.regionEnv(r)
	for _, f := range a.ranges.Facts(w.stmt) {
		rng.AddFactGE(env, f)
	}
	// Loop-variant scalars in region bounds (the paper's P) get their
	// monotonic bounds as facts.
	a.addMonotonicFacts(env, w, r)
	for i := range w.dims {
		wd, rd := w.dims[i], r.dims[i]
		if !wd.ok || !rd.ok {
			return false
		}
		if !env.ProveGE(symbolic.Sub(rd.lo, wd.lo)) {
			return false
		}
		if !env.ProveGE(symbolic.Sub(wd.hi, rd.hi)) {
			return false
		}
	}
	return true
}
