// Package priv implements Polaris' scalar and array privatization
// (Section 3.4 of the paper). A variable is privatizable in a loop when
// every use in an iteration is covered by a definition in the same
// iteration; each iteration then works on a private copy, removing
// memory-related (anti/output) dependences. Scalars use an
// upward-exposed-use analysis over the structured body; arrays use
// symbolic region analysis — the definition region of a covering write
// must contain every read region, with the comparisons discharged by
// the range machinery, GSA backward substitution (the paper's Figure 4)
// and monotonic-variable identification for compress/gather patterns
// (the paper's Figure 5, from BDNA).
package priv

import (
	"sort"

	"polaris/internal/gsa"
	"polaris/internal/ir"
	"polaris/internal/rng"
)

// Result reports the privatization decisions for one loop.
type Result struct {
	// PrivateScalars can be made private (includes inner DO indices).
	PrivateScalars []string
	// LastValue lists private scalars that are live after the loop and
	// definitely assigned every iteration: they need copy-out from the
	// last iteration.
	LastValue []string
	// PrivateArrays can be made private.
	PrivateArrays []string
	// Blocked maps variables that are written in the loop but not
	// privatizable to the reason; any entry not removed by reduction
	// recognition serializes the loop.
	Blocked map[string]string
}

type analyzer struct {
	unit   *ir.ProgramUnit
	ranges *rng.Analyzer
	gsa    *gsa.Analyzer
	loop   *ir.DoStmt
}

// Analyze computes privatization for the loop.
func Analyze(u *ir.ProgramUnit, ra *rng.Analyzer, loop *ir.DoStmt) *Result {
	a := &analyzer{unit: u, ranges: ra, gsa: gsa.New(u), loop: loop}
	res := &Result{Blocked: map[string]string{}}
	a.scalars(res)
	a.arrays(res)
	sort.Strings(res.PrivateScalars)
	sort.Strings(res.LastValue)
	sort.Strings(res.PrivateArrays)
	return res
}

// scalarState tracks the flow walk for one scalar.
type scalarState struct {
	exposed bool // some use not preceded by a same-iteration def
	written bool
}

// scalars runs the upward-exposed-use analysis for every scalar
// assigned in the body.
func (a *analyzer) scalars(res *Result) {
	written := map[string]bool{}
	innerIndices := map[string]bool{}
	callTouched := map[string]bool{}
	ir.WalkStmts(a.loop.Body, func(s ir.Stmt) bool {
		switch x := s.(type) {
		case *ir.AssignStmt:
			if v, ok := x.LHS.(*ir.VarRef); ok {
				written[v.Name] = true
			}
		case *ir.DoStmt:
			innerIndices[x.Index] = true
		case *ir.CallStmt:
			for _, arg := range x.Args {
				if v, ok := arg.(*ir.VarRef); ok {
					if sym := a.unit.Symbols.Lookup(v.Name); sym != nil && !sym.IsArray() {
						callTouched[v.Name] = true
					}
				}
			}
		}
		return true
	})
	// Inner DO indices are private by construction.
	for idx := range innerIndices {
		res.PrivateScalars = append(res.PrivateScalars, idx)
	}
	names := make([]string, 0, len(written))
	for n := range written {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if innerIndices[name] || name == a.loop.Index {
			continue
		}
		if callTouched[name] {
			res.Blocked[name] = "scalar passed to CALL in loop body"
			continue
		}
		exposed, definite := a.exposedUse(name)
		if exposed {
			res.Blocked[name] = "use of scalar not dominated by same-iteration definition"
			continue
		}
		if a.liveAfterLoop(name) {
			if !definite {
				res.Blocked[name] = "live-out scalar not assigned on every path"
				continue
			}
			res.PrivateScalars = append(res.PrivateScalars, name)
			res.LastValue = append(res.LastValue, name)
			continue
		}
		res.PrivateScalars = append(res.PrivateScalars, name)
	}
}

// exposedUse walks the body in execution order tracking whether the
// scalar is defined before each use within one iteration. It returns
// (exposed, definitelyAssignedAtEnd).
func (a *analyzer) exposedUse(name string) (exposed, definite bool) {
	defined := a.walkBlock(a.loop.Body, name, false, &exposed)
	return exposed, defined
}

// walkBlock returns whether the scalar is definitely defined after the
// block given the state at entry.
func (a *analyzer) walkBlock(b *ir.Block, name string, defined bool, exposed *bool) bool {
	for _, s := range b.Stmts {
		switch x := s.(type) {
		case *ir.AssignStmt:
			// RHS and LHS subscripts are uses, evaluated first.
			if !defined {
				if ir.References(x.RHS, name) {
					*exposed = true
				}
				if ar, ok := x.LHS.(*ir.ArrayRef); ok {
					for _, sub := range ar.Subs {
						if ir.References(sub, name) {
							*exposed = true
						}
					}
				}
			}
			if v, ok := x.LHS.(*ir.VarRef); ok && v.Name == name {
				defined = true
			}
		case *ir.IfStmt:
			if !defined && ir.References(x.Cond, name) {
				*exposed = true
			}
			dThen := a.walkBlock(x.Then, name, defined, exposed)
			dElse := defined
			if x.Else != nil {
				dElse = a.walkBlock(x.Else, name, defined, exposed)
			}
			defined = dThen && dElse
		case *ir.DoStmt:
			if !defined {
				for _, e := range ir.StmtExprs(x) {
					if ir.References(e, name) {
						*exposed = true
					}
				}
			}
			if x.Index == name {
				defined = true
			}
			// The first inner iteration sees the pre-loop state; later
			// iterations see at least as much. Conservatively: exposure
			// judged with the entry state, definiteness only if the
			// body cannot be skipped — unknown trip counts make that
			// indeterminate, so definedness after the loop reverts to
			// the entry state unless the body leaves it defined AND the
			// loop provably executes; we keep the conservative entry
			// state.
			bodyDefined := a.walkBlock(x.Body, name, defined, exposed)
			_ = bodyDefined
		case *ir.CallStmt:
			if !defined {
				for _, e := range x.Args {
					if ir.References(e, name) {
						*exposed = true
					}
				}
			}
		}
	}
	return defined
}

// liveAfterLoop conservatively decides whether the scalar may be read
// after the loop completes.
func (a *analyzer) liveAfterLoop(name string) bool {
	sym := a.unit.Symbols.Lookup(name)
	if sym != nil && (sym.Formal || sym.Common != "") {
		return true
	}
	inLoop := map[ir.Stmt]bool{a.loop: true}
	ir.WalkStmts(a.loop.Body, func(s ir.Stmt) bool { inLoop[s] = true; return true })
	live := false
	ir.WalkStmts(a.unit.Body, func(s ir.Stmt) bool {
		if inLoop[s] {
			return s == a.loop
		}
		for _, e := range ir.StmtExprs(s) {
			if ir.References(e, name) {
				live = true
			}
		}
		return !live
	})
	return live
}
