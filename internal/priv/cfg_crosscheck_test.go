package priv

import (
	"testing"

	"polaris/internal/cfg"
	"polaris/internal/ir"
	"polaris/internal/parser"
	"polaris/internal/rng"
)

// TestScalarVerdictsAgreeWithCFGDominance cross-checks the privatizer's
// structured-walk exposure analysis against the CFG dominance relation:
// a scalar reported private must have every use dominated by some def
// of it within the loop body (viewing one iteration as a unit), and a
// scalar reported exposed must have at least one use not dominated by
// any def.
func TestScalarVerdictsAgreeWithCFGDominance(t *testing.T) {
	cases := []string{
		`
      SUBROUTINE S1(N, A, B)
      INTEGER N, I
      REAL A(N), B(N), T
      DO I = 1, N
        T = B(I) * 2.0
        A(I) = T + 1.0
      END DO
      END
`, `
      SUBROUTINE S2(N, A)
      INTEGER N, I
      REAL A(N), T
      T = 0.0
      DO I = 1, N
        A(I) = T
        T = A(I) * 2.0
      END DO
      END
`, `
      SUBROUTINE S3(N, A)
      INTEGER N, I
      REAL A(N), T
      DO I = 1, N
        IF (A(I) .GT. 0.0) THEN
          T = A(I)
          A(I) = T * 2.0
        ELSE
          T = -A(I)
          A(I) = T * 3.0
        END IF
      END DO
      END
`,
	}
	for _, src := range cases {
		prog, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		u := prog.Main()
		loop := ir.OuterLoops(u.Body)[0]
		res := Analyze(u, rng.New(u), loop)

		// Build a one-iteration view: a unit whose body is the loop
		// body, so dominance means "within the same iteration".
		iter := ir.NewUnit(ir.UnitSubroutine, "ITER")
		iter.Symbols = u.Symbols
		iter.Body = loop.Body
		g := cfg.Build(iter)

		verdict := map[string]bool{}
		for _, s := range res.PrivateScalars {
			verdict[s] = true
		}
		// Collect defs and uses of T.
		var defs []ir.Stmt
		var uses []ir.Stmt
		ir.WalkStmts(loop.Body, func(s ir.Stmt) bool {
			if a, ok := s.(*ir.AssignStmt); ok {
				if v, ok := a.LHS.(*ir.VarRef); ok && v.Name == "T" {
					defs = append(defs, s)
				}
				if ir.References(a.RHS, "T") {
					uses = append(uses, s)
				}
			}
			if ifs, ok := s.(*ir.IfStmt); ok && ir.References(ifs.Cond, "T") {
				uses = append(uses, s)
			}
			return true
		})
		allDominated := len(defs) > 0
		for _, use := range uses {
			dominated := false
			for _, def := range defs {
				// A use in the defining statement itself reads the old
				// value: not dominated by that def.
				if def != use && g.StmtDominates(def, use) {
					dominated = true
				}
			}
			if !dominated {
				allDominated = false
			}
		}
		if verdict["T"] != allDominated {
			t.Errorf("privatizer and CFG dominance disagree on T (priv=%v, dom=%v) for:\n%s",
				verdict["T"], allDominated, src)
		}
	}
}
