package pfa_test

import (
	"testing"

	"polaris/internal/parser"
	"polaris/internal/pfa"
)

func TestOptionsCapabilityLevel(t *testing.T) {
	o := pfa.Options()
	if o.Inline || o.Induction || o.ArrayPrivatization || o.RangeTest || o.Permutation || o.LRPD {
		t.Errorf("baseline enables Polaris-only techniques: %+v", o)
	}
	if !o.SimpleInduction || !o.Reductions || !o.Normalize {
		t.Errorf("baseline missing vendor-level techniques: %+v", o)
	}
	if o.HistogramReduction {
		t.Errorf("baseline has histogram reductions")
	}
}

func TestNeutralFactor(t *testing.T) {
	// Large-bodied loops, nothing to unroll: factor 1.0.
	src := `
      PROGRAM P
      REAL A(100), B(100)
      INTEGER I
      DO I = 2, 99
        A(I) = B(I) * 2.0 + B(I-1) * 0.5 + B(I+1) * 0.25 + 1.0
        B(I) = A(I) - B(I) * 0.125 + A(I) * A(I) - 2.0
        A(I) = A(I) + B(I) * 0.0625 + 3.0 - A(I) * 0.03125
        B(I) = B(I) + A(I)
        A(I) = A(I) * 1.5
        B(I) = B(I) * 0.5
        A(I) = A(I) + 1.0
      END DO
      END
`
	res, err := pfa.Compile(parser.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	// The I+-1 stencil carries dependences, so nothing parallelizes
	// and the back-end factor stays neutral.
	if res.Factor != 1.0 {
		t.Errorf("factor = %v, want 1.0", res.Factor)
	}
	if len(res.Demoted) != 0 {
		t.Errorf("demoted = %v", res.Demoted)
	}
}

func TestBoostFactor(t *testing.T) {
	// Several parallel loops with small innermost bodies: 0.85.
	src := `
      PROGRAM P
      REAL A(40,40), B(40,40), C(40,40), D(40,40)
      INTEGER I, J
      DO J = 1, 40
        DO I = 1, 40
          A(I,J) = 0.5 * I
        END DO
      END DO
      DO J = 1, 40
        DO I = 1, 40
          B(I,J) = A(I,J) * 2.0
        END DO
      END DO
      DO J = 1, 40
        DO I = 1, 40
          C(I,J) = A(I,J) + B(I,J)
        END DO
      END DO
      DO J = 1, 40
        DO I = 1, 40
          D(I,J) = C(I,J) - 1.0
        END DO
      END DO
      END
`
	res, err := pfa.Compile(parser.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Factor != 0.85 {
		t.Errorf("factor = %v, want 0.85\n%s", res.Factor, res.Summary())
	}
}

func TestBackfireFactorAndDemotion(t *testing.T) {
	// A parallel loop containing a tiny constant-trip inner loop:
	// factor 1.25 and the loop demoted.
	src := `
      PROGRAM P
      REAL V(4,100), B(4)
      INTEGER I, M
      DO M = 1, 4
        B(M) = 0.5 * M
      END DO
      DO I = 1, 100
        DO M = 1, 4
          V(M,I) = B(M) * I
        END DO
      END DO
      END
`
	res, err := pfa.Compile(parser.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Factor != 1.25 {
		t.Fatalf("factor = %v, want 1.25\n%s", res.Factor, res.Summary())
	}
	if len(res.Demoted) == 0 {
		t.Fatalf("nothing demoted")
	}
	for _, lr := range res.Loops {
		if lr.Index == "I" && lr.Depth == 0 && lr.Parallel {
			t.Errorf("outer loop survived demotion:\n%s", res.Summary())
		}
	}
}

func TestBaselineStillParallelizesSimpleLoops(t *testing.T) {
	src := `
      PROGRAM P
      REAL A(100), B(100)
      INTEGER I
      DO I = 1, 100
        A(I) = B(I) + 1.0
      END DO
      END
`
	res, err := pfa.Compile(parser.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.ParallelLoops() != 1 {
		t.Errorf("parallel loops = %d, want 1\n%s", res.ParallelLoops(), res.Summary())
	}
}
