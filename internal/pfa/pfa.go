// Package pfa models the comparison baseline of the paper's Figure 7:
// SGI's Power Fortran Analyzer circa 1996, as the paper characterizes
// it. Its analysis level: intraprocedural only (no inline expansion),
// simple induction variables with constant increments, scalar (not
// array) privatization, scalar non-histogram reductions, and linear
// (GCD/Banerjee) dependence tests only — no symbolic range test, no
// run-time speculation.
//
// PFA's strength was its back-end code generation (loop interchange,
// unrolling, fusion), which the paper credits for its wins on two codes
// and blames for its losses on appsp and tomcatv. That is modelled as a
// CodegenFactor applied to the machine model, chosen by a structural
// heuristic over the program's loops.
package pfa

import (
	"polaris/internal/core"
	"polaris/internal/ir"
	"polaris/internal/rng"
)

// Options returns the 1996-vendor capability configuration.
func Options() core.Options {
	return core.Options{
		Inline:             false,
		Induction:          false,
		SimpleInduction:    true,
		Reductions:         true,
		HistogramReduction: false,
		ArrayPrivatization: false,
		RangeTest:          false,
		Permutation:        false,
		LRPD:               false,
		Normalize:          true, // loop normalization is classic vendor technology
	}
}

// Result couples the baseline compilation with the modelled back-end
// code-quality factor.
type Result struct {
	*core.Result
	// Factor scales every executed cycle (see CodegenFactor).
	Factor float64
	// Demoted lists loops whose parallelization the unrolling back end
	// destroyed (the appsp/tomcatv effect).
	Demoted []string
}

// Compile runs the baseline pipeline and applies the back-end model:
// when PFA's unroller targets tiny constant-trip loops nested inside a
// parallel loop, the transformed loop body defeats the parallel code
// generator — the loop is demoted to serial and the whole program pays
// the transformation overhead (factor 1.25). Otherwise small-bodied
// innermost loops reward unrolling/fusion (factor 0.85) when
// parallelization succeeded broadly.
func Compile(prog *ir.Program) (*Result, error) {
	compiled, err := core.Compile(prog, Options())
	if err != nil {
		return nil, err
	}
	res := &Result{Result: compiled, Factor: CodegenFactor(compiled.Program, compiled)}
	if res.Factor > 1.0 {
		// The unroller interfered: demote every parallel loop that
		// contains a tiny constant-trip inner loop (its body was
		// bloated by the unrolled copies) and every tiny loop itself
		// (it was unrolled out of existence).
		for i := range compiled.Loops {
			lr := &compiled.Loops[i]
			if !lr.Parallel {
				continue
			}
			if containsTinyLoop(compiled, lr) || isTinyLoop(compiled, lr.Unit, lr.Loop) {
				lr.Parallel = false
				lr.Reason = "parallelism lost to inner-loop unrolling (code generation)"
				lr.Loop.Par.Parallel = false
				lr.Loop.Par.Reason = lr.Reason
				res.Demoted = append(res.Demoted, lr.Unit+"."+lr.Index)
			}
		}
	}
	return res, nil
}

// isTinyLoop reports a tiny constant-trip small-bodied loop.
func isTinyLoop(compiled *core.Result, unitName string, d *ir.DoStmt) bool {
	u := compiled.Program.Unit(unitName)
	if u == nil || len(d.Body.Stmts) > 3 {
		return false
	}
	ra := rng.New(u)
	lo, hi, ok := ra.LoopRange(d)
	if !ok {
		return false
	}
	lc, ok1 := lo.Const()
	hc, ok2 := hi.Const()
	if !ok1 || !ok2 || !lc.IsInt() || !hc.IsInt() {
		return false
	}
	return hc.Num().Int64()-lc.Num().Int64()+1 <= 8
}

// CodegenFactor models PFA's low-level loop transformations (loop
// interchange, unrolling, fusion), applied to the loops PFA itself
// parallelized:
//
//   - a parallel loop containing a tiny constant-trip inner loop gets
//     that inner loop unrolled into its body, bloating the parallel
//     region and adding overhead — the paper's appsp/tomcatv backfire
//     (factor 1.25);
//   - broad parallelization success (several loops) over small-bodied
//     innermost loops is where unrolling and fusion pay off — the two
//     codes where the paper reports PFA beating Polaris (factor 0.85);
//   - otherwise the back end is neutral (factor 1.0).
func CodegenFactor(prog *ir.Program, compiled *core.Result) float64 {
	parallel := 0
	smallish := 0
	for i := range compiled.Loops {
		lr := &compiled.Loops[i]
		if !lr.Parallel {
			continue
		}
		parallel++
		if containsTinyLoop(compiled, lr) {
			return 1.25
		}
		if smallInnermost(lr.Loop) {
			smallish++
		}
	}
	if parallel >= 4 && smallish*2 >= parallel {
		return 0.85
	}
	return 1.0
}

// containsTinyLoop reports a tiny constant-trip, small-bodied loop
// nested inside the loop (the unroller's favourite target).
func containsTinyLoop(compiled *core.Result, lr *core.LoopReport) bool {
	u := compiled.Program.Unit(lr.Unit)
	if u == nil {
		return false
	}
	ra := rng.New(u)
	for _, inner := range ir.Loops(lr.Loop.Body) {
		if len(inner.Body.Stmts) > 3 {
			continue
		}
		lo, hi, ok := ra.LoopRange(inner)
		if !ok {
			continue
		}
		lc, ok1 := lo.Const()
		hc, ok2 := hi.Const()
		if !ok1 || !ok2 || !lc.IsInt() || !hc.IsInt() {
			continue
		}
		if hc.Num().Int64()-lc.Num().Int64()+1 <= 8 {
			return true
		}
	}
	return false
}

// smallInnermost reports whether the loop is (or contains) innermost
// loops with small bodies — the unrollable shape.
func smallInnermost(d *ir.DoStmt) bool {
	inner := ir.InnerLoops(d)
	if len(inner) == 0 {
		return len(d.Body.Stmts) <= 6
	}
	for _, l := range inner {
		if smallInnermost(l) {
			return true
		}
	}
	return false
}
