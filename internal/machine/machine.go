// Package machine defines the deterministic cost model that stands in
// for the paper's hardware testbeds (the 8-processor SGI Challenge of
// Figure 7 and the 8-processor Alliant FX/80 of Figure 6). Every IR
// operation has a cycle cost; a parallel loop costs fork + the maximum
// per-processor share of its iterations + join; reductions and the
// run-time PD test add their own terms. Simulated cycles make speedup
// measurements reproducible on any host, preserving the ratio structure
// (work distribution, overheads, Amdahl behaviour) that the paper's
// figures plot — see DESIGN.md for the substitution rationale.
package machine

// ReductionStyle selects how parallel reductions are implemented —
// the paper's "blocked, private, or expanded" forms (Section 3.2,
// citing Pottenger & Eigenmann).
type ReductionStyle int

const (
	// ReductionPrivate gives each processor a private accumulator
	// (scalar or full array copy) merged at the join: merge cost is
	// p * elements, update cost is an ordinary store.
	ReductionPrivate ReductionStyle = iota
	// ReductionBlocked updates the shared accumulator under a lock:
	// no merge, but every reduction update pays a synchronization
	// premium.
	ReductionBlocked
	// ReductionExpanded expands the accumulator by a processor
	// dimension in shared memory; like private but with an extra
	// initialization sweep (elements * p) before the loop.
	ReductionExpanded
)

// String names the style.
func (s ReductionStyle) String() string {
	switch s {
	case ReductionBlocked:
		return "blocked"
	case ReductionExpanded:
		return "expanded"
	}
	return "private"
}

// Model is a simulated shared-memory multiprocessor.
type Model struct {
	// Processors available for DOALL execution.
	Processors int
	// ForkCycles / JoinCycles are paid once per parallel loop
	// execution (dispatch and barrier).
	ForkCycles int64
	JoinCycles int64
	// Reductions selects the implementation form of parallel
	// reductions.
	Reductions ReductionStyle
	// ReductionMergeCycles is paid per reduction element per
	// processor at the join (combining partial accumulators; private
	// and expanded forms).
	ReductionMergeCycles int64
	// ReductionLockCycles is the per-update synchronization premium of
	// the blocked form.
	ReductionLockCycles int64
	// PrivateInitCycles is paid per privatized array per processor at
	// the fork (allocating the private copies).
	PrivateInitCycles int64
	// PDTest parameters (Section 3.5): marking multiplies the cost of
	// each access to a tested array; the post-execution analysis costs
	// AnalysisPerElement * elements / p + AnalysisLogTerm * log2(p).
	PDMarkCyclesPerAccess int64
	PDAnalysisPerElement  int64
	PDAnalysisLogTerm     int64
	// BackupCyclesPerElement is the checkpoint/restore cost per array
	// element saved for speculative execution.
	BackupCyclesPerElement int64
	// CodegenFactor scales every cycle of the compiled program,
	// modelling back-end code quality (PFA's low-level loop
	// transformations; 1.0 = neutral).
	CodegenFactor float64
}

// Default returns the reference 8-processor machine.
func Default() Model {
	return Model{
		Processors:             8,
		ForkCycles:             1500,
		JoinCycles:             1000,
		Reductions:             ReductionPrivate,
		ReductionMergeCycles:   60,
		ReductionLockCycles:    80,
		PrivateInitCycles:      150,
		PDMarkCyclesPerAccess:  4,
		PDAnalysisPerElement:   2,
		PDAnalysisLogTerm:      300,
		BackupCyclesPerElement: 2,
		CodegenFactor:          1.0,
	}
}

// WithProcessors returns a copy with a different processor count.
func (m Model) WithProcessors(p int) Model {
	m.Processors = p
	return m
}

// WithCodegenFactor returns a copy with a different code-quality
// factor.
func (m Model) WithCodegenFactor(f float64) Model {
	m.CodegenFactor = f
	return m
}

// WithReductions returns a copy using the given reduction form.
func (m Model) WithReductions(s ReductionStyle) Model {
	m.Reductions = s
	return m
}

// Cost is the per-operation cycle table (R4400-flavoured magnitudes).
type Cost struct {
	Load, Store     int64
	AddSub, Mul     int64
	Div, Pow        int64
	Compare, Branch int64
	Intrinsic       int64
	LoopIter        int64
	AddrCalc        int64
	CallOverhead    int64
}

// DefaultCost returns the reference operation costs.
func DefaultCost() Cost {
	return Cost{
		Load:         2,
		Store:        2,
		AddSub:       1,
		Mul:          4,
		Div:          20,
		Pow:          40,
		Compare:      1,
		Branch:       2,
		Intrinsic:    25,
		LoopIter:     2,
		AddrCalc:     1,
		CallOverhead: 30,
	}
}

// Log2 returns ceil(log2(p)) for the PD-test analysis term.
func Log2(p int) int64 {
	n := int64(0)
	for v := 1; v < p; v *= 2 {
		n++
	}
	return n
}
