package machine

import "testing"

func TestDefaultSane(t *testing.T) {
	m := Default()
	if m.Processors != 8 {
		t.Errorf("default processors = %d", m.Processors)
	}
	if m.CodegenFactor != 1.0 {
		t.Errorf("default codegen factor = %v", m.CodegenFactor)
	}
	if m.ForkCycles <= 0 || m.JoinCycles <= 0 {
		t.Errorf("non-positive overheads: %+v", m)
	}
}

func TestWithers(t *testing.T) {
	m := Default()
	m2 := m.WithProcessors(4).WithCodegenFactor(0.85)
	if m2.Processors != 4 || m2.CodegenFactor != 0.85 {
		t.Errorf("withers failed: %+v", m2)
	}
	// Original untouched (value semantics).
	if m.Processors != 8 || m.CodegenFactor != 1.0 {
		t.Errorf("withers mutated the receiver: %+v", m)
	}
}

func TestCostTableOrdering(t *testing.T) {
	c := DefaultCost()
	if !(c.AddSub <= c.Mul && c.Mul <= c.Div && c.Div <= c.Pow) {
		t.Errorf("arithmetic cost ordering violated: %+v", c)
	}
	if c.Load <= 0 || c.Store <= 0 || c.LoopIter <= 0 {
		t.Errorf("non-positive basic costs: %+v", c)
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4}
	for p, want := range cases {
		if got := Log2(p); got != want {
			t.Errorf("Log2(%d) = %d, want %d", p, got, want)
		}
	}
}
