// Package pattern implements Polaris' wildcard-based structural pattern
// matching and replacement over IR expressions — the mechanism the paper
// describes as the basis of the higher-level "Forbol" tool. A pattern is
// an ordinary expression tree that may contain *ir.Wildcard nodes
// anywhere; matching binds each wildcard ID to the subexpression it
// covers, with repeated IDs required to bind structurally equal
// subexpressions.
package pattern

import (
	"polaris/internal/ir"
)

// Bindings maps wildcard IDs to the matched subexpressions. The bound
// expressions are the original nodes (not clones); callers must Clone
// before inserting them elsewhere.
type Bindings map[string]ir.Expr

// Match reports whether e matches the pattern, and the wildcard
// bindings if it does.
func Match(pat, e ir.Expr) (Bindings, bool) {
	b := Bindings{}
	if match(pat, e, b) {
		return b, true
	}
	return nil, false
}

func match(pat, e ir.Expr, b Bindings) bool {
	if w, ok := pat.(*ir.Wildcard); ok {
		if w.Pred != nil && !w.Pred(e) {
			return false
		}
		if prev, bound := b[w.ID]; bound {
			return ir.Equal(prev, e)
		}
		b[w.ID] = e
		return true
	}
	switch p := pat.(type) {
	case *ir.ConstInt:
		x, ok := e.(*ir.ConstInt)
		return ok && x.Val == p.Val
	case *ir.ConstReal:
		x, ok := e.(*ir.ConstReal)
		return ok && x.Val == p.Val
	case *ir.ConstLogical:
		x, ok := e.(*ir.ConstLogical)
		return ok && x.Val == p.Val
	case *ir.VarRef:
		x, ok := e.(*ir.VarRef)
		return ok && x.Name == p.Name
	case *ir.ArrayRef:
		x, ok := e.(*ir.ArrayRef)
		if !ok || x.Name != p.Name || len(x.Subs) != len(p.Subs) {
			return false
		}
		for i := range p.Subs {
			if !match(p.Subs[i], x.Subs[i], b) {
				return false
			}
		}
		return true
	case *ir.Binary:
		x, ok := e.(*ir.Binary)
		return ok && x.Op == p.Op && match(p.L, x.L, b) && match(p.R, x.R, b)
	case *ir.Unary:
		x, ok := e.(*ir.Unary)
		return ok && x.Op == p.Op && match(p.X, x.X, b)
	case *ir.Call:
		x, ok := e.(*ir.Call)
		if !ok || x.Name != p.Name || len(x.Args) != len(p.Args) {
			return false
		}
		for i := range p.Args {
			if !match(p.Args[i], x.Args[i], b) {
				return false
			}
		}
		return true
	}
	return false
}

// Find returns the first subexpression of e (pre-order) matching the
// pattern, with its bindings, or ok=false.
func Find(pat, e ir.Expr) (sub ir.Expr, b Bindings, ok bool) {
	ir.WalkExpr(e, func(n ir.Expr) bool {
		if ok {
			return false
		}
		if bi, m := Match(pat, n); m {
			sub, b, ok = n, bi, true
			return false
		}
		return true
	})
	return sub, b, ok
}

// Contains reports whether any subexpression of e matches the pattern.
func Contains(pat, e ir.Expr) bool {
	_, _, ok := Find(pat, e)
	return ok
}

// Instantiate builds an expression from a template containing
// wildcards, replacing each wildcard by a clone of its binding.
// Unbound wildcards are an internal error.
func Instantiate(template ir.Expr, b Bindings) ir.Expr {
	return ir.MapExpr(template, func(n ir.Expr) ir.Expr {
		if w, ok := n.(*ir.Wildcard); ok {
			bound, has := b[w.ID]
			ir.Assert(has, "pattern.Instantiate: unbound wildcard "+w.ID)
			return bound.Clone()
		}
		return n
	})
}

// ReplaceAll rewrites e, replacing every subexpression matching pat
// with the instantiated template (outermost-first, no re-scan of the
// replacement). It returns the rewritten expression and the number of
// replacements.
func ReplaceAll(e, pat, template ir.Expr) (ir.Expr, int) {
	count := 0
	var rewrite func(ir.Expr) ir.Expr
	rewrite = func(n ir.Expr) ir.Expr {
		if b, ok := Match(pat, n); ok {
			count++
			return Instantiate(template, b)
		}
		switch x := n.(type) {
		case *ir.ArrayRef:
			c := &ir.ArrayRef{Name: x.Name, Subs: make([]ir.Expr, len(x.Subs))}
			for i, s := range x.Subs {
				c.Subs[i] = rewrite(s)
			}
			return c
		case *ir.Binary:
			return &ir.Binary{Op: x.Op, L: rewrite(x.L), R: rewrite(x.R)}
		case *ir.Unary:
			return &ir.Unary{Op: x.Op, X: rewrite(x.X)}
		case *ir.Call:
			c := &ir.Call{Name: x.Name, Args: make([]ir.Expr, len(x.Args))}
			for i, a := range x.Args {
				c.Args[i] = rewrite(a)
			}
			return c
		default:
			return n.Clone()
		}
	}
	return rewrite(e), count
}

// W returns a wildcard with the given ID.
func W(id string) *ir.Wildcard { return &ir.Wildcard{ID: id} }

// WPred returns a wildcard with a predicate filter.
func WPred(id string, pred func(ir.Expr) bool) *ir.Wildcard {
	return &ir.Wildcard{ID: id, Pred: pred}
}

// MatchReductionStmt matches the Polaris reduction idiom
//
//	A(a1,...,an) = A(a1,...,an) op expr    (n may be 0: scalar)
//
// where op is + or -, the subscripts a_i and expr do not reference A.
// It returns the target name, the subscripts, the accumulated
// expression (normalized so the operation is always "+"; for "-" the
// expression is negated), and ok.
func MatchReductionStmt(s *ir.AssignStmt) (target string, subs []ir.Expr, addend ir.Expr, ok bool) {
	rhs, isBin := s.RHS.(*ir.Binary)
	if !isBin || (rhs.Op != ir.OpAdd && rhs.Op != ir.OpSub) {
		return "", nil, nil, false
	}
	name, lhsSubs := refParts(s.LHS)
	if name == "" {
		return "", nil, nil, false
	}
	// The LHS reference must reappear as one side of the RHS; for "-"
	// only A = A - expr is a reduction (not A = expr - A).
	var other ir.Expr
	if ir.Equal(rhs.L, s.LHS) {
		other = rhs.R
	} else if rhs.Op == ir.OpAdd && ir.Equal(rhs.R, s.LHS) {
		other = rhs.L
	} else {
		return "", nil, nil, false
	}
	if ir.References(other, name) {
		return "", nil, nil, false
	}
	for _, sub := range lhsSubs {
		if ir.References(sub, name) {
			return "", nil, nil, false
		}
	}
	if rhs.Op == ir.OpSub {
		other = ir.Neg(other.Clone())
	}
	return name, lhsSubs, other, true
}

func refParts(e ir.Expr) (string, []ir.Expr) {
	switch x := e.(type) {
	case *ir.VarRef:
		return x.Name, nil
	case *ir.ArrayRef:
		return x.Name, x.Subs
	}
	return "", nil
}
