package pattern

import (
	"testing"

	"polaris/internal/ir"
)

func TestReplaceAllInsideUnaryAndCall(t *testing.T) {
	pat := ir.Var("K")
	tmpl := ir.Int(9)
	e := expr(t, "-K + MOD(K, 2)")
	out, n := ReplaceAll(e, pat, tmpl)
	if n != 2 || out.String() != "(-9)+MOD(9,2)" {
		t.Errorf("ReplaceAll = %s (%d)", out, n)
	}
}

func TestMatchUnaryAndMismatchKinds(t *testing.T) {
	pat := ir.Neg(W("x"))
	if b, ok := Match(pat, expr(t, "-A(3)")); !ok || b["x"].String() != "A(3)" {
		t.Errorf("unary match failed: %v %v", b, ok)
	}
	if _, ok := Match(pat, expr(t, "A(3)")); ok {
		t.Errorf("unary pattern matched non-unary")
	}
	// Constants of different kinds.
	if _, ok := Match(ir.Real(1.0), ir.Int(1)); ok {
		t.Errorf("real pattern matched int")
	}
	if _, ok := Match(ir.Logical(true), expr(t, ".FALSE.")); ok {
		t.Errorf("true matched false")
	}
	// Arity mismatches.
	if _, ok := Match(expr(t, "MOD(I,2)"), expr(t, "MOD(I,2,3)")); ok {
		t.Errorf("different-arity calls matched")
	}
	if _, ok := Match(expr(t, "A(I)"), expr(t, "A(I,J)")); ok {
		t.Errorf("different-rank arrays matched")
	}
}

func TestFindPreOrderFirst(t *testing.T) {
	// Both A(1) and A(2) match; Find must return the first in
	// pre-order (the LHS-most occurrence).
	pat := ir.Index("A", W("s"))
	e := expr(t, "A(1) + A(2)")
	sub, _, ok := Find(pat, e)
	if !ok || sub.String() != "A(1)" {
		t.Errorf("Find returned %v", sub)
	}
}

func TestMatchReductionMulAndMax(t *testing.T) {
	// Multiplication and MAX idioms go through sideMatch in the
	// reduction package; here the base additive matcher must reject
	// them (it only does +/-).
	if _, _, _, ok := MatchReductionStmt(assign(t, "S", "S * 2.0")); ok {
		t.Errorf("additive matcher accepted multiplication")
	}
	if _, _, _, ok := MatchReductionStmt(assign(t, "S", "MAX(S, 1.0)")); ok {
		t.Errorf("additive matcher accepted MAX")
	}
}

func TestWPredNilAlwaysMatches(t *testing.T) {
	if _, ok := Match(W("any"), expr(t, "1+2*3")); !ok {
		t.Errorf("bare wildcard failed")
	}
}
