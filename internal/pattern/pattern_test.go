package pattern

import (
	"testing"

	"polaris/internal/ir"
	"polaris/internal/parser"
)

func expr(t *testing.T, src string) ir.Expr {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestMatchBindsWildcards(t *testing.T) {
	// pattern: ?x + ?y*?x
	pat := ir.Add(W("x"), ir.Mul(W("y"), W("x")))
	e := expr(t, "K + N*K")
	b, ok := Match(pat, e)
	if !ok {
		t.Fatalf("no match")
	}
	if b["x"].String() != "K" || b["y"].String() != "N" {
		t.Errorf("bindings: %v", b)
	}
	// Repeated wildcard must see equal structure.
	if _, ok := Match(pat, expr(t, "K + N*J")); ok {
		t.Errorf("matched with inconsistent repeated wildcard")
	}
}

func TestMatchLiteralStructure(t *testing.T) {
	pat := expr(t, "A(I) + 1")
	if _, ok := Match(pat, expr(t, "A(I) + 1")); !ok {
		t.Errorf("identical expression did not match")
	}
	if _, ok := Match(pat, expr(t, "A(J) + 1")); ok {
		t.Errorf("different subscript matched")
	}
	if _, ok := Match(pat, expr(t, "B(I) + 1")); ok {
		t.Errorf("different array matched")
	}
}

func TestMatchPredicates(t *testing.T) {
	isConst := func(e ir.Expr) bool { _, ok := e.(*ir.ConstInt); return ok }
	pat := ir.Add(ir.Var("K"), WPred("c", isConst))
	if _, ok := Match(pat, expr(t, "K + 3")); !ok {
		t.Errorf("predicate match failed")
	}
	if _, ok := Match(pat, expr(t, "K + N")); ok {
		t.Errorf("predicate did not filter")
	}
}

func TestFindAndContains(t *testing.T) {
	pat := ir.Index("A", W("s"))
	e := expr(t, "X + B(A(2*I)) * 3")
	sub, b, ok := Find(pat, e)
	if !ok || sub.String() != "A(2*I)" || b["s"].String() != "2*I" {
		t.Errorf("Find = %v %v %v", sub, b, ok)
	}
	if !Contains(pat, e) {
		t.Errorf("Contains = false")
	}
	if Contains(ir.Index("Q", W("s")), e) {
		t.Errorf("Contains found absent pattern")
	}
}

func TestReplaceAll(t *testing.T) {
	// Replace K with (I-1) everywhere: pattern ?-free var match.
	pat := ir.Var("K")
	tmpl := ir.Sub(ir.Var("I"), ir.Int(1))
	e := expr(t, "K + A(K)*K")
	out, n := ReplaceAll(e, pat, tmpl)
	if n != 3 {
		t.Errorf("replacements = %d, want 3", n)
	}
	if out.String() != "I-1+A(I-1)*(I-1)" {
		t.Errorf("ReplaceAll = %s", out)
	}
	// Input untouched.
	if e.String() != "K+A(K)*K" {
		t.Errorf("input mutated: %s", e)
	}
}

func TestReplaceAllWithBindings(t *testing.T) {
	// x*2 -> x+x
	pat := ir.Mul(W("x"), ir.Int(2))
	tmpl := ir.Add(W("x"), W("x"))
	out, n := ReplaceAll(expr(t, "(I+J)*2 + K*2"), pat, tmpl)
	if n != 2 || out.String() != "I+J+(I+J)+(K+K)" {
		t.Errorf("ReplaceAll = %s (%d)", out, n)
	}
}

func TestInstantiateUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("unbound wildcard did not panic")
		}
	}()
	Instantiate(W("nope"), Bindings{})
}

func assign(t *testing.T, lhs, rhs string) *ir.AssignStmt {
	t.Helper()
	return &ir.AssignStmt{LHS: expr(t, lhs), RHS: expr(t, rhs)}
}

func TestMatchReductionStmt(t *testing.T) {
	cases := []struct {
		lhs, rhs string
		ok       bool
		target   string
		addend   string
	}{
		{"S", "S + A(I)", true, "S", "A(I)"},
		{"S", "A(I) + S", true, "S", "A(I)"},
		{"S", "S - A(I)", true, "S", "-A(I)"},
		{"S", "A(I) - S", false, "", ""},
		{"A(IND(I))", "A(IND(I)) + X", true, "A", "X"},
		{"A(I)", "A(I+1) + X", false, "", ""},  // different element
		{"S", "S + S", false, "", ""},          // addend references target
		{"S", "S * 2", false, "", ""},          // not additive
		{"A(I)", "A(I) + A(J)", false, "", ""}, // addend references array
	}
	for _, c := range cases {
		st := assign(t, c.lhs, c.rhs)
		target, _, addend, ok := MatchReductionStmt(st)
		if ok != c.ok {
			t.Errorf("%s = %s: ok=%v, want %v", c.lhs, c.rhs, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if target != c.target || addend.String() != c.addend {
			t.Errorf("%s = %s: target=%s addend=%s", c.lhs, c.rhs, target, addend)
		}
	}
}

func TestMatchHistogramReduction(t *testing.T) {
	st := assign(t, "H(KEY(I))", "H(KEY(I)) + 1.0")
	target, subs, addend, ok := MatchReductionStmt(st)
	if !ok || target != "H" || len(subs) != 1 || addend.String() != "1.0" {
		t.Errorf("histogram reduction not recognized: %v %v %v %v", target, subs, addend, ok)
	}
}
