package polaris

import (
	"fmt"
	"io"

	"polaris/internal/core"
	"polaris/internal/deps"
	"polaris/internal/obsv"
	"polaris/internal/passes"
)

// Option configures a Compile call. Options follow the functional-
// options pattern: zero options compile with the paper's full
// technique set and no instrumentation.
type Option func(*compileConfig)

type compileConfig struct {
	baseline    bool
	techniques  Techniques
	stats       *Stats
	trace       *passes.TraceWriter
	traceLabel  string
	observer    *obsv.Observer
	processors  int
	unitWorkers int
	memo        *UnitMemo
}

func defaultCompileConfig() compileConfig {
	return compileConfig{techniques: FullTechniques()}
}

// WithTechniques selects an explicit technique set (the ablation
// studies use this); the default is FullTechniques.
func WithTechniques(t Techniques) Option {
	return func(c *compileConfig) { c.techniques = t }
}

// WithBaseline compiles at the 1996-vendor (PFA) capability level the
// paper compares against, including its modelled back-end
// code-quality factor. Technique selection and tracing do not apply
// to the baseline compiler.
func WithBaseline() Option {
	return func(c *compileConfig) { c.baseline = true }
}

// WithStats accumulates dependence-test counts into s during
// compilation.
func WithStats(s *Stats) Option {
	return func(c *compileConfig) { c.stats = s }
}

// WithTrace streams one JSON line per executed pass to w: the pass
// name, wall-clock duration, and IR-mutation counts (the schema is
// documented in DESIGN.md). The writer is synchronized internally, so
// concurrent Compile calls may share one w.
func WithTrace(w io.Writer) Option {
	return func(c *compileConfig) { c.trace = passes.NewTraceWriter(w) }
}

// WithTraceLabel tags trace events and the pipeline report with a
// compilation label (typically the program name), distinguishing
// interleaved events when concurrent compilations share a trace
// writer.
func WithTraceLabel(label string) Option {
	return func(c *compileConfig) { c.traceLabel = label }
}

// WithProcessors sets the simulated processor count that Execute uses
// for this result when ExecOptions.Processors is zero (default 8).
func WithProcessors(n int) Option {
	return func(c *compileConfig) { c.processors = n }
}

// WithUnitWorkers sets the worker pool size the per-unit pipeline
// passes use to analyze program units concurrently: 0 (the default)
// means GOMAXPROCS, 1 forces the serial schedule, n > 1 uses n
// workers. The schedule is an implementation detail of compile
// throughput only — verdicts, decision provenance, and the trace
// stream are byte-for-byte identical at every worker count.
func WithUnitWorkers(n int) Option {
	return func(c *compileConfig) { c.unitWorkers = n }
}

// UnitMemo is the bounded per-unit memo behind incremental
// compilation: a singleflight LRU of per-unit pass results keyed by
// each program unit's post-prologue content hash. Create one with
// NewUnitMemo, share it across Compile calls (it is safe for
// concurrent use), and pass it via WithIncremental; recompiles then
// re-run only the units an edit actually changed, replaying the
// memoized decision provenance for the rest. The memo never changes
// what a compilation produces — verdicts, decision streams, and
// emitted code are byte-identical with or without it.
type UnitMemo struct {
	inner *core.UnitMemo
}

// NewUnitMemo returns an empty unit memo bounded to at most maxEntries
// completed units and maxBytes of estimated retained size; zero means
// unlimited for either bound. In-flight fills are pinned and do not
// count against the bounds until they complete.
func NewUnitMemo(maxEntries int, maxBytes int64) *UnitMemo {
	return &UnitMemo{inner: core.NewUnitMemo(core.MemoLimits{MaxEntries: maxEntries, MaxBytes: maxBytes})}
}

// MemoStats is a point-in-time snapshot of a UnitMemo: resident
// entries/bytes, unit-level hit and miss counts, and LRU evictions.
type MemoStats = core.MemoStats

// Stats snapshots the memo's gauges and counters.
func (m *UnitMemo) Stats() MemoStats { return m.inner.Stats() }

// WithIncremental enables incremental compilation against the shared
// unit memo m: units whose post-prologue content hash matches a
// completed memo entry are reused (their pass results and decision
// records replayed) and only changed units re-run the per-unit passes.
// Result.UnitsReused / Result.UnitsRecompiled report the split. A nil
// m compiles normally. Does not apply to baseline compilations.
func WithIncremental(m *UnitMemo) Option {
	return func(c *compileConfig) { c.memo = m }
}

// TechniqueNames returns the canonical names of every selectable
// technique, in pipeline order. These are the strings TechniquesFromNames
// accepts and the wire format polaris-serve exposes in a /v1/compile
// request's "techniques" list.
func TechniqueNames() []string { return core.TechniqueNames() }

// TechniquesFromNames builds a technique set from canonical names (see
// TechniqueNames). An unknown name is an error naming the offender and
// the valid set; an empty list is the empty technique set (use
// FullTechniques for the default).
func TechniquesFromNames(names []string) (Techniques, error) {
	o, err := core.OptionsFromNames(names)
	if err != nil {
		return Techniques{}, fmt.Errorf("polaris: %w", err)
	}
	return techniquesFromCore(o), nil
}

// Names returns the canonical names of the enabled techniques, in
// pipeline order — the inverse of TechniquesFromNames.
func (t Techniques) Names() []string { return core.NamesOf(coreOptions(t)) }

// techniquesFromCore lifts the internal driver's option set back to
// the public technique selection — the inverse of coreOptions.
func techniquesFromCore(o core.Options) Techniques {
	return Techniques{
		Inline:                   o.Inline,
		Induction:                o.Induction,
		SimpleInduction:          o.SimpleInduction,
		Reductions:               o.Reductions,
		HistogramReductions:      o.HistogramReduction,
		ArrayPrivatization:       o.ArrayPrivatization,
		RangeTest:                o.RangeTest,
		LoopPermutation:          o.Permutation,
		RunTimeTest:              o.LRPD,
		StrengthReduction:        o.StrengthReduction,
		LoopNormalization:        o.Normalize,
		InterproceduralConstants: o.InterprocConstants,
	}
}

// Stats counts dependence-test work during one compilation.
type Stats struct {
	// PairsTested counts array access pairs submitted to the
	// dependence tester.
	PairsTested int
	// LinearDecided counts pairs settled by the linear (GCD/Banerjee
	// class) tests.
	LinearDecided int
	// RangeTests counts pairs that needed the symbolic range test.
	RangeTests int
	// Permutations counts loop-order permutations attempted.
	Permutations int
}

func (s *Stats) fill(d deps.Stats) {
	s.PairsTested = d.PairsTested
	s.LinearDecided = d.LinearDecided
	s.RangeTests = d.RangeTests
	s.Permutations = d.Permutations
}

// coreOptions lowers the public technique selection to the internal
// driver's option set.
func coreOptions(t Techniques) core.Options {
	return core.Options{
		Inline:             t.Inline,
		Induction:          t.Induction,
		SimpleInduction:    t.SimpleInduction,
		Reductions:         t.Reductions,
		HistogramReduction: t.HistogramReductions,
		ArrayPrivatization: t.ArrayPrivatization,
		RangeTest:          t.RangeTest,
		Permutation:        t.LoopPermutation,
		LRPD:               t.RunTimeTest,
		StrengthReduction:  t.StrengthReduction,
		Normalize:          t.LoopNormalization,
		InterprocConstants: t.InterproceduralConstants,
	}
}
