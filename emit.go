package polaris

import (
	"io"

	"polaris/internal/codegen"
)

// emitConfig collects the EmitOption settings for one Result.Emit call.
type emitConfig struct {
	goTarget bool
	procs    int
	label    string
}

// EmitOption configures Result.Emit. The target selectors EmitFortran
// and EmitGo are themselves options; the default target is Fortran.
type EmitOption func(*emitConfig)

// EmitFortran selects annotated Fortran output: the restructured
// source with parallel directives, preceded by the compilation report
// (the pre-redesign AnnotatedSource format, byte for byte).
func EmitFortran(c *emitConfig) { c.goTarget = false }

// EmitGo selects the Go source-to-source backend: a standalone,
// buildable Go program in which DOALL loops run on bounded goroutine
// teams, reductions are logged per worker and replayed in serial
// order, privatized arrays become per-worker copies, and LRPD loops
// inline the speculative shadow test with serial re-execution on
// failure. Programs outside the backend's exactly-reproducible subset
// return a *codegen.UnsupportedError.
func EmitGo(c *emitConfig) { c.goTarget = true }

// WithEmitProcessors sets the default worker-team size baked into
// emitted Go programs (overridable at run time with -p). Without this
// option the Result's WithProcessors value applies, defaulting to 8.
func WithEmitProcessors(n int) EmitOption {
	return func(c *emitConfig) { c.procs = n }
}

// WithEmitLabel names the program in the generated header.
func WithEmitLabel(label string) EmitOption {
	return func(c *emitConfig) { c.label = label }
}

// Emit writes the compiled program to w in the selected target
// language. With no options it emits annotated Fortran.
func (r *Result) Emit(w io.Writer, opts ...EmitOption) error {
	cfg := emitConfig{procs: r.processors}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.goTarget {
		src, err := codegen.EmitGo(r.inner, codegen.GoOptions{Processors: cfg.procs, Label: cfg.label})
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, src)
		return err
	}
	_, err := io.WriteString(w, codegen.EmitFortran(r.inner))
	return err
}
