package polaris_test

// Tests for the context-aware functional-options API: Compile(ctx,
// prog, ...Option), its instrumentation surface, cancellation, and the
// deprecated-wrapper equivalence. TestSuite is the end-to-end gate CI
// runs with -count=1.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"polaris"
	"polaris/internal/parser"
	"polaris/internal/suite"
)

const apiSrc = `
      PROGRAM DEMO
      REAL RESULT
      COMMON /OUT/ RESULT
      REAL A(100)
      INTEGER I
      DO I = 1, 100
        A(I) = 1.5 * I
      END DO
      RESULT = 0.0
      DO I = 1, 100
        RESULT = RESULT + A(I)
      END DO
      END
`

func TestCompileDefaultMatchesParallelize(t *testing.T) {
	prog, err := polaris.Parse(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	viaNew, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	viaOld, err := polaris.Parallelize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if viaNew.Summary() != viaOld.Summary() {
		t.Errorf("Compile and Parallelize disagree:\n%s\nvs\n%s", viaNew.Summary(), viaOld.Summary())
	}
	if viaNew.Report == nil {
		t.Error("Compile result has no pipeline report")
	}
}

func TestCompileWithTechniquesAndBaseline(t *testing.T) {
	prog, err := polaris.Parse(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Empty technique set: nothing parallelizes beyond what no-op
	// analysis grants; the call must still succeed.
	none, err := polaris.Compile(context.Background(), prog, polaris.WithTechniques(polaris.Techniques{}))
	if err != nil {
		t.Fatal(err)
	}
	full, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if none.ParallelLoops() > full.ParallelLoops() {
		t.Errorf("empty techniques found more parallelism (%d) than full (%d)",
			none.ParallelLoops(), full.ParallelLoops())
	}
	base, err := polaris.Compile(context.Background(), prog, polaris.WithBaseline())
	if err != nil {
		t.Fatal(err)
	}
	if base.Report != nil {
		t.Error("baseline compilation should not carry a Polaris pipeline report")
	}
	oldBase, err := polaris.ParallelizeBaseline(prog)
	if err != nil {
		t.Fatal(err)
	}
	if base.CodegenFactor != oldBase.CodegenFactor {
		t.Errorf("baseline codegen factor %v != deprecated wrapper's %v",
			base.CodegenFactor, oldBase.CodegenFactor)
	}
}

func TestCompileWithTraceAndStats(t *testing.T) {
	prog, err := polaris.Parse(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var stats polaris.Stats
	res, err := polaris.Compile(context.Background(), prog,
		polaris.WithTrace(&buf), polaris.WithTraceLabel("demo"), polaris.WithStats(&stats))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PairsTested == 0 {
		t.Error("WithStats collected no dependence-test counts")
	}
	// One JSONL line per pass, labels applied.
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var ev struct {
			Label      string           `json:"label"`
			Pass       string           `json:"pass"`
			DurationNS int64            `json:"duration_ns"`
			Mutations  map[string]int64 `json:"mutations"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line: %v", err)
		}
		if ev.Label != "demo" || ev.Pass == "" {
			t.Errorf("trace line missing label/pass: %+v", ev)
		}
		lines++
	}
	if lines != len(res.Report.Events) {
		t.Errorf("trace lines %d != report events %d", lines, len(res.Report.Events))
	}
	if res.Report.Label != "demo" {
		t.Errorf("report label = %q", res.Report.Label)
	}
}

func TestCompileCancelled(t *testing.T) {
	prog, err := polaris.Parse(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := polaris.Compile(ctx, prog); !errors.Is(err, context.Canceled) {
		t.Errorf("Compile: want context.Canceled, got %v", err)
	}
	if _, err := polaris.ExecuteProgramContext(ctx, prog, polaris.ExecOptions{Serial: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecuteProgramContext: want context.Canceled, got %v", err)
	}
}

func TestWithProcessorsDefault(t *testing.T) {
	prog, err := polaris.Parse(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := polaris.Compile(context.Background(), prog, polaris.WithProcessors(2))
	if err != nil {
		t.Fatal(err)
	}
	res8, err := polaris.Compile(context.Background(), prog, polaris.WithProcessors(8))
	if err != nil {
		t.Fatal(err)
	}
	run2, err := polaris.Execute(res2, polaris.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run8, err := polaris.Execute(res8, polaris.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run8.Cycles >= run2.Cycles {
		t.Errorf("8-processor default (%d cycles) not faster than 2-processor (%d)",
			run8.Cycles, run2.Cycles)
	}
	// An explicit ExecOptions.Processors still wins.
	override, err := polaris.Execute(res2, polaris.ExecOptions{Processors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if override.Cycles != run8.Cycles {
		t.Errorf("explicit Processors=8 gave %d cycles, want %d", override.Cycles, run8.Cycles)
	}
}

func TestParseErrorTyped(t *testing.T) {
	_, err := polaris.Parse("      PROGRAM X\n      DO I = , 10\n      END DO\n      END\n")
	if err == nil {
		t.Fatal("no error for malformed DO")
	}
	var perr *parser.ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("error %T is not *parser.ParseError: %v", err, err)
	}
	if perr.Line != 2 {
		t.Errorf("ParseError.Line = %d, want 2", perr.Line)
	}
	if perr.Col <= 0 {
		t.Errorf("ParseError.Col = %d, want > 0", perr.Col)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error text %q does not locate the failure", err.Error())
	}
}

// TestSuite is the end-to-end gate (CI runs it with -count=1): the
// 16-program suite compiled concurrently through the Runner, verdicts
// and checksums intact, pipeline reports present for every program.
func TestSuite(t *testing.T) {
	runner := suite.NewRunner()
	rows, err := runner.Figure7(context.Background(), 8)
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	for _, r := range rows {
		tol := 1e-9 * (1 + math.Abs(r.SerialChecksum))
		if math.Abs(r.PolarisChecksum-r.SerialChecksum) > tol {
			t.Errorf("%s: Polaris checksum %v != serial %v", r.Name, r.PolarisChecksum, r.SerialChecksum)
		}
		if math.Abs(r.PFAChecksum-r.SerialChecksum) > tol {
			t.Errorf("%s: PFA checksum %v != serial %v", r.Name, r.PFAChecksum, r.SerialChecksum)
		}
		if r.Polaris <= 0 || r.PFA <= 0 {
			t.Errorf("%s: non-positive speedup (%v, %v)", r.Name, r.Polaris, r.PFA)
		}
	}
	// Every suite program also compiles through the public API with a
	// report.
	for _, p := range suite.All() {
		prog, err := polaris.Parse(p.Source)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		res, err := polaris.Compile(context.Background(), prog, polaris.WithTraceLabel(p.Name))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.Report == nil || len(res.Report.Events) == 0 {
			t.Errorf("%s: missing pipeline report", p.Name)
		}
	}
}
