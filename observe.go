package polaris

import (
	"io"

	"polaris/internal/obsv"
)

// Observer collects structured observability data across compilations
// and executions: per-pass spans, per-loop decision records (which
// technique enabled a DOALL, which dependence or symbolic fact blocked
// one), and runtime execution metrics (per-loop cycles, parallel
// coverage, speculation outcomes). One Observer may be shared by
// concurrent Compile and Execute calls; all methods are safe for
// concurrent use.
//
// Attach it to a compilation with WithObserver and to an execution via
// ExecOptions.Observer. Records are tagged with the compilation's
// trace label (WithTraceLabel) or the execution's ExecOptions.Label.
type Observer struct {
	inner *obsv.Observer
}

// NewObserver returns an empty observer.
func NewObserver() *Observer { return &Observer{inner: obsv.NewObserver()} }

// StreamTo mirrors every record to w as trace-schema v2 JSONL (one
// versioned envelope per line, with a global sequence number assigned
// under the writer lock, so lines are totally ordered even when many
// goroutines share the observer). The schema is documented in
// DESIGN.md; DecodeTrace reads it back.
func (o *Observer) StreamTo(w io.Writer) {
	o.inner.SetTrace(obsv.NewTraceWriter(w))
}

// TraceErr returns the first error the trace stream hit, if any.
func (o *Observer) TraceErr() error { return o.inner.TraceErr() }

// WithObserver attaches the observer to a compilation: every pass
// reports a span, and every analyzed loop reports decision records
// culminating in a final verdict record.
func WithObserver(o *Observer) Option {
	return func(c *compileConfig) {
		if o != nil {
			c.observer = o.inner
		}
	}
}

// LoopDecision is one per-loop decision record: the contribution of a
// single analysis pass, or (Final) the verdict that won.
type LoopDecision struct {
	// Label is the compilation label; Unit the program unit; Loop the
	// stable loop ID ("MAIN/L30"); Index the DO variable; Depth the
	// nesting depth.
	Label, Unit, Loop, Index string
	Depth                    int
	// Pass names the reporting analysis ("dependence",
	// "privatization", "reduction", "lrpd", "verdict",
	// "strength-reduction", ...).
	Pass string
	// Verdict is "doall", "serial", or "lrpd" on final records.
	Verdict string
	// Technique names the enabling technique(s); Blocker the blocking
	// dependence or construct; Detail is free-form context.
	Technique, Blocker, Detail string
	// Evidence lists supporting facts (unanalyzable arrays, privatized
	// variables, reduction candidates, ...).
	Evidence []string
	// Final marks verdict records; the latest final record per loop is
	// the loop's outcome.
	Final bool
}

func publicDecision(d obsv.Decision) LoopDecision {
	return LoopDecision{
		Label: d.Label, Unit: d.Unit, Loop: d.Loop, Index: d.Index,
		Depth: d.Depth, Pass: d.Pass, Verdict: d.Verdict,
		Technique: d.Technique, Blocker: d.Blocker, Detail: d.Detail,
		Evidence: append([]string(nil), d.Evidence...), Final: d.Final,
	}
}

// Decisions returns every decision record for the label (all labels
// when label is empty), in emission order.
func (o *Observer) Decisions(label string) []LoopDecision {
	var out []LoopDecision
	for _, d := range o.inner.Decisions() {
		if label == "" || d.Label == label {
			out = append(out, publicDecision(d))
		}
	}
	return out
}

// FinalDecisions returns the winning verdict record of every loop
// compiled under the label, in program order.
func (o *Observer) FinalDecisions(label string) []LoopDecision {
	var out []LoopDecision
	for _, d := range o.inner.FinalDecisions(label) {
		out = append(out, publicDecision(d))
	}
	return out
}

// Explanations renders one human-readable line per loop compiled under
// the label ("MAIN/L30 DO I: DOALL — ..."), indented by nesting depth.
func (o *Observer) Explanations(label string) []string {
	return o.inner.Explanations(label)
}

// Explain renders the explanation for one loop, matched by full ID
// ("MAIN/L30"), bare label ("L30"), or index variable. Empty when no
// loop matches.
func (o *Observer) Explain(label, loop string) string {
	return o.inner.Explain(label, loop)
}

// Trail returns the full decision trail — per-pass evidence records
// plus final verdicts — of every loop matching the query (full ID,
// bare "L30" label, or index variable) under the label.
func (o *Observer) Trail(label, loop string) []LoopDecision {
	var out []LoopDecision
	for _, d := range o.inner.Decisions() {
		if label != "" && d.Label != label {
			continue
		}
		if d.Loop == "" || !obsv.MatchLoop(d, loop) {
			continue
		}
		out = append(out, publicDecision(d))
	}
	return out
}

// Counters snapshots the named event counters ("loops_analyzed",
// "loops_doall", ...).
func (o *Observer) Counters() map[string]int64 { return o.inner.Counters() }

// LoopStat is the runtime execution metric of one parallel loop.
type LoopStat struct {
	// Loop is the stable loop ID shared with the decision records.
	Loop string
	// Kind is "doall" or "lrpd".
	Kind string
	// Execs counts loop entries; SerialCycles the serial-equivalent
	// body work; ParallelCycles the simulated parallel time charged.
	Execs, SerialCycles, ParallelCycles int64
	// PDPasses / PDFailures count speculation outcomes (lrpd only).
	PDPasses, PDFailures int64
}

// RunStats summarizes one simulated execution recorded through
// ExecOptions.Observer.
type RunStats struct {
	Label      string
	Processors int
	// Cycles is the simulated time; Work the serial-equivalent total;
	// ParallelWork the portion executed inside parallel regions.
	Cycles, Work, ParallelWork int64
	// Coverage is ParallelWork/Work — the parallel-coverage fraction.
	Coverage float64
	// PDPasses / PDFailures count speculative loop outcomes.
	PDPasses, PDFailures int64
	// Loops is the per-loop breakdown, in stable order.
	Loops []LoopStat
}

// Runs returns every recorded execution, in order.
func (o *Observer) Runs() []RunStats {
	var out []RunStats
	for _, r := range o.inner.Runs() {
		rs := RunStats{
			Label: r.Label, Processors: r.Processors,
			Cycles: r.TotalCycles, Work: r.TotalWork,
			ParallelWork: r.ParallelWork, Coverage: r.Coverage,
			PDPasses: r.PDPasses, PDFailures: r.PDFailures,
		}
		for _, lm := range r.Loops {
			rs.Loops = append(rs.Loops, LoopStat{
				Loop: lm.Loop, Kind: lm.Kind, Execs: lm.Execs,
				SerialCycles: lm.SerialCycles, ParallelCycles: lm.ParallelCycles,
				PDPasses: lm.PDPasses, PDFailures: lm.PDFailures,
			})
		}
		out = append(out, rs)
	}
	return out
}
