// Command polaris-serve runs the Polaris compile service: a
// long-running HTTP/JSON front end over the restructuring pipeline.
//
// Usage:
//
//	polaris-serve [-addr :8080] [-workers N] [-queue N]
//	              [-timeout 10s] [-max-timeout 30s]
//	              [-cache-entries N] [-cache-bytes N]
//	              [-drain-timeout 30s]
//
// Endpoints:
//
//	POST /v1/compile  {"source": "...", "label": "...", "techniques": [...],
//	                   "baseline": false, "timeout_ms": 0}
//	                  → verdicts, per-loop decision provenance, pass report
//	POST /v1/explain  {"source": "...", "loop": "MAIN/L30", "verbose": true}
//	                  → the `polaris explain` surface as JSON
//	GET  /healthz     → 200 ok (503 while draining)
//	GET  /metrics     → obsv counters + cache/queue gauges (JSON)
//
// Requests flow through a bounded admission layer (worker pool plus a
// fixed-depth queue; overflow is shed with 429 + Retry-After) and a
// per-request deadline that propagates through the pass manager. On
// SIGTERM or SIGINT the listener stops, in-flight compiles drain, and
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polaris/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent compilations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the worker pool")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request compile deadline")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on client-requested deadlines")
	cacheEntries := flag.Int("cache-entries", 1024, "compile cache LRU entry cap")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "compile cache LRU byte cap")
	maxSource := flag.Int64("max-source-bytes", 1<<20, "request body size cap")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
	flag.Parse()

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxSourceBytes: *maxSource,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("polaris-serve: listen %s: %v", *addr, err)
	}
	log.Printf("polaris-serve: listening on %s", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("polaris-serve: serve: %v", err)
		}
		return
	case <-ctx.Done():
	}
	stop()
	log.Printf("polaris-serve: draining (up to %v)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "polaris-serve: drain: %v\n", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "polaris-serve: serve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("polaris-serve: drained, exiting")
}
