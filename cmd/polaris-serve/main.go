// Command polaris-serve runs the Polaris compile service: a
// long-running HTTP/JSON front end over the restructuring pipeline.
//
// Usage:
//
//	polaris-serve [-addr :8080] [-workers N] [-queue N]
//	              [-timeout 10s] [-max-timeout 30s]
//	              [-cache-entries N] [-cache-bytes N]
//	              [-drain-timeout 30s] [-access-log]
//	              [-debug-addr localhost:6060]
//	              [-self a -peers a=http://h1:8080,b=http://h2:8080]
//	              [-fill-timeout 2s]
//
// Endpoints:
//
//	POST /v1/compile  {"source": "...", "label": "...", "techniques": [...],
//	                   "baseline": false, "timeout_ms": 0}
//	                  → verdicts, per-loop decision provenance, pass report
//	POST /v1/explain  {"source": "...", "loop": "MAIN/L30", "verbose": true}
//	                  → the `polaris explain` surface as JSON
//	GET  /healthz     → 200 ok (503 while draining)
//	GET  /metrics     → counters, cache/queue gauges, latency histograms
//	                    (JSON; ?format=prometheus for text exposition)
//
// Every request carries a trace ID (X-Request-Id, adopted or
// generated, echoed on the response and in the JSON body) and resolves
// to one outcome (cold / cache_hit / coalesced / shed / timeout /
// canceled / error); with -access-log each request writes one
// structured JSON line to stdout, joinable on that ID — a coalesced
// response's leader_id names the request whose line shows outcome
// "cold". -debug-addr starts an opt-in net/http/pprof listener on a
// separate mux so profiling is never exposed on the service port.
//
// Requests flow through a bounded admission layer (worker pool plus a
// fixed-depth queue; overflow is shed with 429 and a Retry-After
// derived from the observed drain rate) and a per-request deadline
// that propagates through the pass manager. On SIGTERM or SIGINT the
// listener stops, in-flight compiles drain, and the process exits 0.
//
// With -self and -peers the node joins a compile fabric: cache keys
// are consistent-hash routed across the named ring, a local miss asks
// the key's owner for the finished entry (POST /fabric/v1/fill) under
// the -fill-timeout deadline, and owner death degrades to a local
// compile. POST /fabric/v1/owner answers which node owns a source's
// key.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"polaris/internal/fabric"
	"polaris/internal/server"
)

// parsePeers turns "a=http://h1:8080,b=http://h2:8080" into a peer
// map. A name without "=" (or with an empty URL) is allowed — fabric
// validates that only self may omit its URL.
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, _ := strings.Cut(part, "=")
		if name == "" {
			return nil, fmt.Errorf("entry %q has no node name", part)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("node %q listed twice", name)
		}
		peers[name] = url
	}
	return peers, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent compilations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the worker pool")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request compile deadline")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on client-requested deadlines")
	cacheEntries := flag.Int("cache-entries", 1024, "compile cache LRU entry cap")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "compile cache LRU byte cap")
	maxSource := flag.Int64("max-source-bytes", 1<<20, "request body size cap")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
	accessLog := flag.Bool("access-log", false, "write one structured JSON access-log line per request to stdout")
	debugAddr := flag.String("debug-addr", "", "optional net/http/pprof listen address (e.g. localhost:6060); empty disables")
	self := flag.String("self", "", "this node's fabric ring name; empty disables the peer tier")
	peers := flag.String("peers", "", "fabric ring members as name=url,name=url (self's URL may be omitted)")
	fillTimeout := flag.Duration("fill-timeout", fabric.DefaultFillTimeout, "per-attempt peer cache-fill deadline")
	flag.Parse()

	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxSourceBytes: *maxSource,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
	}
	if *self != "" || *peers != "" {
		peerMap, err := parsePeers(*peers)
		if err != nil {
			log.Fatalf("polaris-serve: -peers: %v", err)
		}
		fab, err := fabric.New(fabric.Config{
			Self:        *self,
			Peers:       peerMap,
			FillTimeout: *fillTimeout,
		})
		if err != nil {
			log.Fatalf("polaris-serve: %v", err)
		}
		cfg.Fabric = fab
		log.Printf("polaris-serve: fabric node %q, ring %v", fab.Self(), fab.Nodes())
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewJSONHandler(os.Stdout, nil))
	}
	srv := server.New(cfg)

	if *debugAddr != "" {
		// pprof on its own mux and listener: the service port never
		// serves profiling endpoints.
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("polaris-serve: debug listen %s: %v", *debugAddr, err)
		}
		log.Printf("polaris-serve: pprof on %s", dl.Addr())
		go func() {
			if err := http.Serve(dl, debugMux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("polaris-serve: debug serve: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("polaris-serve: listen %s: %v", *addr, err)
	}
	log.Printf("polaris-serve: listening on %s", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("polaris-serve: serve: %v", err)
		}
		return
	case <-ctx.Done():
	}
	stop()
	log.Printf("polaris-serve: draining (up to %v)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "polaris-serve: drain: %v\n", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "polaris-serve: serve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("polaris-serve: drained, exiting")
}
