// Command polaris-run compiles and executes a Fortran-subset program on
// the simulated multiprocessor, reporting simulated cycles, speedup
// over serial execution, and run-time (PD) test outcomes. Compilation
// and execution are cancellable with Ctrl-C.
//
// Usage:
//
//	polaris-run [-p procs] [-baseline] [-serial] [-suite name] [file.f]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"polaris"
	"polaris/internal/suite"
)

func main() {
	procs := flag.Int("p", 8, "simulated processors")
	baseline := flag.Bool("baseline", false, "use the PFA-level baseline compiler")
	serial := flag.Bool("serial", false, "execute serially (no parallel loops)")
	suiteName := flag.String("suite", "", "run the named embedded benchmark")
	redForm := flag.String("reductions", "private", "reduction form: private, blocked, expanded")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	src, err := readSource(*suiteName, flag.Args())
	if err != nil {
		fail(err)
	}
	prog, err := polaris.Parse(src)
	if err != nil {
		fail(fmt.Errorf("parse: %w", err))
	}

	serialRun, err := polaris.ExecuteProgramContext(ctx, prog, polaris.ExecOptions{Serial: true})
	if err != nil {
		fail(fmt.Errorf("serial execution: %w", err))
	}
	fmt.Printf("serial:    %12d cycles\n", serialRun.Cycles)
	if sum, ok := serialRun.Probe("OUT", "RESULT"); ok {
		fmt.Printf("checksum:  %g\n", sum)
	}
	if *serial {
		return
	}

	opts := []polaris.Option{polaris.WithProcessors(*procs)}
	if *baseline {
		opts = append(opts, polaris.WithBaseline())
	}
	res, err := polaris.Compile(ctx, prog, opts...)
	if err != nil {
		fail(fmt.Errorf("compile: %w", err))
	}
	run, err := polaris.ExecuteContext(ctx, res, polaris.ExecOptions{ReductionForm: *redForm})
	if err != nil {
		fail(fmt.Errorf("parallel execution: %w", err))
	}
	fmt.Printf("parallel:  %12d cycles on %d processors\n", run.Cycles, *procs)
	fmt.Printf("speedup:   %12.2f\n", float64(serialRun.Cycles)/float64(run.Cycles))
	fmt.Printf("loops:     %d parallel of %d analyzed, %d DOALL executions\n",
		res.ParallelLoops(), len(res.Loops), run.ParallelLoopExecs)
	if run.PDTestPasses+run.PDTestFailures > 0 {
		fmt.Printf("PD test:   %d passed, %d failed\n", run.PDTestPasses, run.PDTestFailures)
	}
	if sum, ok := run.Probe("OUT", "RESULT"); ok {
		refSum, _ := serialRun.Probe("OUT", "RESULT")
		status := "matches serial"
		if sum != refSum {
			status = fmt.Sprintf("MISMATCH (serial %g)", refSum)
		}
		fmt.Printf("checksum:  %g (%s)\n", sum, status)
	}
}

func readSource(suiteName string, args []string) (string, error) {
	if suiteName != "" {
		p, ok := suite.ByName(suiteName)
		if !ok {
			return "", fmt.Errorf("unknown suite program %q", suiteName)
		}
		return p.Source, nil
	}
	if len(args) != 1 {
		return "", fmt.Errorf("usage: polaris-run [-p procs] [-baseline] [-serial] [-suite name | file.f]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polaris-run:", err)
	os.Exit(1)
}
