// Command polaris-run compiles and executes a Fortran-subset program on
// the simulated multiprocessor, reporting simulated cycles, speedup
// over serial execution, and run-time (PD) test outcomes. Compilation
// and execution are cancellable with Ctrl-C.
//
// With -native the program is instead lowered to parallel Go by the
// source-to-source backend, built with the real toolchain, and timed on
// the actual hardware: the report shows wall-clock times for the serial
// and parallel runs of the emitted binary, the resulting speedup, and
// whether the two final memory states match bit for bit.
//
// Usage:
//
//	polaris-run [-p procs] [-baseline] [-serial] [-suite name] [file.f]
//	polaris-run -native [-p workers] [-reps n] [-race] [-suite name] [file.f]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"polaris"
	"polaris/internal/oracle"
	"polaris/internal/suite"
)

func main() {
	procs := flag.Int("p", 8, "simulated processors (native: worker-team size)")
	baseline := flag.Bool("baseline", false, "use the PFA-level baseline compiler")
	serial := flag.Bool("serial", false, "execute serially (no parallel loops)")
	suiteName := flag.String("suite", "", "run the named embedded benchmark")
	redForm := flag.String("reductions", "private", "reduction form: private, blocked, expanded")
	native := flag.Bool("native", false, "emit parallel Go, build it, and time real wall-clock execution")
	reps := flag.Int("reps", 5, "native: repetitions per timed run (state resets between)")
	race := flag.Bool("race", false, "native: build the emitted program with -race")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	src, err := readSource(*suiteName, flag.Args())
	if err != nil {
		fail(err)
	}
	if *native {
		label := *suiteName
		if label == "" {
			label = flag.Args()[0]
		}
		os.Exit(runNative(ctx, label, src, *procs, *reps, *race))
	}
	prog, err := polaris.Parse(src)
	if err != nil {
		fail(fmt.Errorf("parse: %w", err))
	}

	serialRun, err := polaris.ExecuteProgramContext(ctx, prog, polaris.ExecOptions{Serial: true})
	if err != nil {
		fail(fmt.Errorf("serial execution: %w", err))
	}
	fmt.Printf("serial:    %12d cycles\n", serialRun.Cycles)
	if sum, ok := serialRun.Probe("OUT", "RESULT"); ok {
		fmt.Printf("checksum:  %g\n", sum)
	}
	if *serial {
		return
	}

	opts := []polaris.Option{polaris.WithProcessors(*procs)}
	if *baseline {
		opts = append(opts, polaris.WithBaseline())
	}
	res, err := polaris.Compile(ctx, prog, opts...)
	if err != nil {
		fail(fmt.Errorf("compile: %w", err))
	}
	run, err := polaris.ExecuteContext(ctx, res, polaris.ExecOptions{ReductionForm: *redForm})
	if err != nil {
		fail(fmt.Errorf("parallel execution: %w", err))
	}
	fmt.Printf("parallel:  %12d cycles on %d processors\n", run.Cycles, *procs)
	fmt.Printf("speedup:   %12.2f\n", float64(serialRun.Cycles)/float64(run.Cycles))
	fmt.Printf("loops:     %d parallel of %d analyzed, %d DOALL executions\n",
		res.ParallelLoops(), len(res.Loops), run.ParallelLoopExecs)
	if run.PDTestPasses+run.PDTestFailures > 0 {
		fmt.Printf("PD test:   %d passed, %d failed\n", run.PDTestPasses, run.PDTestFailures)
	}
	if sum, ok := run.Probe("OUT", "RESULT"); ok {
		refSum, _ := serialRun.Probe("OUT", "RESULT")
		status := "matches serial"
		if sum != refSum {
			status = fmt.Sprintf("MISMATCH (serial %g)", refSum)
		}
		fmt.Printf("checksum:  %g (%s)\n", sum, status)
	}
}

// runNative lowers the program to Go, builds it once, and times the
// emitted binary's serial and parallel modes on the real machine.
func runNative(ctx context.Context, label, src string, procs, reps int, race bool) int {
	goSrc, err := oracle.EmitNative(ctx, label, src, procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris-run: native:", err)
		return 1
	}
	bin, cleanup, err := oracle.BuildNative(ctx, goSrc, race)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris-run: native:", err)
		return 1
	}
	defer cleanup()

	repsArg := strconv.Itoa(reps)
	serialRes, err := oracle.RunNativeBinary(ctx, bin, "-serial", "-reps", repsArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris-run: native serial:", err)
		return 1
	}
	parRes, err := oracle.RunNativeBinary(ctx, bin, "-p", strconv.Itoa(procs), "-reps", repsArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris-run: native parallel:", err)
		return 1
	}

	fmt.Printf("native serial:   %12v wall clock (%d reps)\n", time.Duration(serialRes.ElapsedNs), reps)
	fmt.Printf("native parallel: %12v wall clock on %d workers (GOMAXPROCS=%d)\n",
		time.Duration(parRes.ElapsedNs), procs, runtime.GOMAXPROCS(0))
	if parRes.ElapsedNs > 0 {
		fmt.Printf("speedup:         %12.2f\n", float64(serialRes.ElapsedNs)/float64(parRes.ElapsedNs))
	}
	status := 0
	if d := oracle.Diff(serialRes.State, parRes.State, 0); d != "" {
		fmt.Printf("state:           MISMATCH: %s\n", d)
		status = 1
	} else {
		fmt.Printf("state:           parallel matches serial bit-for-bit (%d variables)\n", len(serialRes.State))
	}
	for _, r := range []*oracle.NativeResult{serialRes, parRes} {
		if r.Leaked != 0 {
			fmt.Printf("goroutines:      LEAK (%d alive at exit)\n", r.Leaked)
			status = 1
		}
	}
	return status
}

func readSource(suiteName string, args []string) (string, error) {
	if suiteName != "" {
		p, ok := suite.ByName(suiteName)
		if !ok {
			return "", fmt.Errorf("unknown suite program %q", suiteName)
		}
		return p.Source, nil
	}
	if len(args) != 1 {
		return "", fmt.Errorf("usage: polaris-run [-p procs] [-baseline] [-serial] [-suite name | file.f]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polaris-run:", err)
	os.Exit(1)
}
