// Command polaris compiles a Fortran-subset source file with the
// Polaris pipeline (or the PFA-level baseline) and prints the
// restructured, directive-annotated program.
//
// Usage:
//
//	polaris [-baseline] [-summary] [-report] [-trace file.jsonl]
//	        [-suite name] [file.f]
//	polaris explain [-v] [-suite name] [file.f] [loop]
//	polaris emit [-target go|fortran] [-o dir] [-p n] [-suite name] [file.f]
//
// With -suite, the named embedded benchmark program is compiled
// instead of reading a file. -report prints the pass manager's
// per-pass wall time and mutation counts; -trace streams the same
// instrumentation as JSON lines.
//
// The emit subcommand writes the compiler's product as source: with
// -target fortran the directive-annotated restructured program, with
// -target go (the default) a standalone parallel Go program lowered
// from the analysis results — buildable with the stock toolchain and
// runnable with a -p worker-count flag.
//
// The explain subcommand prints one human-readable line per loop
// naming the verdict and the enabling technique or blocking dependence
// ("MAIN/L30 DO I: DOALL — independence proved by the range test;
// array privatization of WRK"). With a loop argument (a stable ID like
// MAIN/L30, a bare label like L30, or an index variable) it explains
// just that loop; -v adds the full per-pass decision trail.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polaris"
	"polaris/internal/suite"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		os.Exit(runExplain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "emit" {
		os.Exit(runEmit(os.Args[2:]))
	}
	baseline := flag.Bool("baseline", false, "use the 1996 vendor-compiler (PFA) technique level")
	summary := flag.Bool("summary", false, "print only the per-loop report, not the program")
	report := flag.Bool("report", false, "print per-pass timings and mutation counts")
	tracePath := flag.String("trace", "", "write per-pass JSONL trace events to this file")
	suiteName := flag.String("suite", "", "compile the named embedded benchmark (e.g. trfd, ocean, bdna)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	label, src, err := readSource(*suiteName, flag.Args())
	if err != nil {
		fail(err)
	}
	prog, err := polaris.Parse(src)
	if err != nil {
		fail(fmt.Errorf("parse: %w", err))
	}
	opts := []polaris.Option{polaris.WithTraceLabel(label)}
	if *baseline {
		opts = append(opts, polaris.WithBaseline())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		opts = append(opts, polaris.WithTrace(f))
	}
	res, err := polaris.Compile(ctx, prog, opts...)
	if err != nil {
		fail(fmt.Errorf("compile: %w", err))
	}
	if *report {
		printReport(res)
	}
	if *summary {
		fmt.Print(res.Summary())
		return
	}
	if !*report {
		if err := res.Emit(os.Stdout, polaris.EmitFortran); err != nil {
			fail(err)
		}
	}
}

// runExplain compiles the program with an observer attached and
// renders the per-loop decision provenance.
func runExplain(args []string) int {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	suiteName := fs.String("suite", "", "explain the named embedded benchmark (e.g. trfd, ocean, bdna)")
	verbose := fs.Bool("v", false, "print the full per-pass decision trail, not just the verdict line")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: polaris explain [-v] [-suite name | file.f] [loop]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	rest := fs.Args()

	var srcArgs []string
	query := ""
	switch {
	case *suiteName != "":
		if len(rest) > 1 {
			fs.Usage()
			return 2
		}
		if len(rest) == 1 {
			query = rest[0]
		}
	case len(rest) >= 1 && len(rest) <= 2:
		srcArgs = rest[:1]
		if len(rest) == 2 {
			query = rest[1]
		}
	default:
		fs.Usage()
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	label, src, err := readSource(*suiteName, srcArgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris explain:", err)
		return 2
	}
	prog, err := polaris.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris explain: parse:", err)
		return 1
	}
	obs := polaris.NewObserver()
	if _, err := polaris.Compile(ctx, prog, polaris.WithTraceLabel(label), polaris.WithObserver(obs)); err != nil {
		fmt.Fprintln(os.Stderr, "polaris explain: compile:", err)
		return 1
	}

	if query != "" {
		line := obs.Explain(label, query)
		if line == "" {
			fmt.Fprintf(os.Stderr, "polaris explain: no loop matches %q\n", query)
			return 1
		}
		fmt.Println(line)
		if *verbose {
			printTrail(obs.Trail(label, query))
		}
		return 0
	}
	lines := obs.Explanations(label)
	if len(lines) == 0 {
		fmt.Fprintln(os.Stderr, "polaris explain: no loops found")
		return 1
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	if *verbose {
		printTrail(obs.Trail(label, ""))
	}
	return 0
}

// printTrail renders per-pass decision records beneath the verdict
// lines: pass name, detail, and the supporting evidence.
func printTrail(trail []polaris.LoopDecision) {
	fmt.Println()
	for _, d := range trail {
		head := fmt.Sprintf("%s [%s]", d.Loop, d.Pass)
		if d.Verdict != "" {
			head += " " + d.Verdict
		}
		fmt.Printf("%s: %s\n", head, d.Detail)
		if d.Technique != "" {
			fmt.Printf("    technique: %s\n", d.Technique)
		}
		if d.Blocker != "" {
			fmt.Printf("    blocker:   %s\n", d.Blocker)
		}
		for _, ev := range d.Evidence {
			fmt.Printf("    - %s\n", ev)
		}
	}
}

func printReport(res *polaris.Result) {
	if res.Report == nil {
		fmt.Fprintln(os.Stderr, "polaris: no pipeline report (baseline compiler)")
		return
	}
	fmt.Printf("pipeline (%s): %v total\n", res.Report.Label, res.Report.Total.Round(time.Microsecond))
	for _, ev := range res.Report.Events {
		fmt.Printf("  %-22s %10v", ev.Pass, ev.Duration.Round(time.Microsecond))
		for _, k := range sortedKeys(ev.Mutations) {
			fmt.Printf("  %s=%d", k, ev.Mutations[k])
		}
		fmt.Println()
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func readSource(suiteName string, args []string) (label, src string, err error) {
	if suiteName != "" {
		p, ok := suite.ByName(suiteName)
		if !ok {
			return "", "", fmt.Errorf("unknown suite program %q", suiteName)
		}
		return p.Name, p.Source, nil
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("usage: polaris [-baseline] [-summary] [-report] [-trace f] [-suite name | file.f]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return args[0], string(data), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polaris:", err)
	os.Exit(1)
}
