// Command polaris compiles a Fortran-subset source file with the
// Polaris pipeline (or the PFA-level baseline) and prints the
// restructured, directive-annotated program.
//
// Usage:
//
//	polaris [-baseline] [-summary] [-report] [-trace file.jsonl]
//	        [-suite name] [file.f]
//
// With -suite, the named embedded benchmark program is compiled
// instead of reading a file. -report prints the pass manager's
// per-pass wall time and mutation counts; -trace streams the same
// instrumentation as JSON lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polaris"
	"polaris/internal/suite"
)

func main() {
	baseline := flag.Bool("baseline", false, "use the 1996 vendor-compiler (PFA) technique level")
	summary := flag.Bool("summary", false, "print only the per-loop report, not the program")
	report := flag.Bool("report", false, "print per-pass timings and mutation counts")
	tracePath := flag.String("trace", "", "write per-pass JSONL trace events to this file")
	suiteName := flag.String("suite", "", "compile the named embedded benchmark (e.g. trfd, ocean, bdna)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	label, src, err := readSource(*suiteName, flag.Args())
	if err != nil {
		fail(err)
	}
	prog, err := polaris.Parse(src)
	if err != nil {
		fail(fmt.Errorf("parse: %w", err))
	}
	opts := []polaris.Option{polaris.WithTraceLabel(label)}
	if *baseline {
		opts = append(opts, polaris.WithBaseline())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		opts = append(opts, polaris.WithTrace(f))
	}
	res, err := polaris.Compile(ctx, prog, opts...)
	if err != nil {
		fail(fmt.Errorf("compile: %w", err))
	}
	if *report {
		printReport(res)
	}
	if *summary {
		fmt.Print(res.Summary())
		return
	}
	if !*report {
		fmt.Print(res.AnnotatedSource())
	}
}

func printReport(res *polaris.Result) {
	if res.Report == nil {
		fmt.Fprintln(os.Stderr, "polaris: no pipeline report (baseline compiler)")
		return
	}
	fmt.Printf("pipeline (%s): %v total\n", res.Report.Label, res.Report.Total.Round(time.Microsecond))
	for _, ev := range res.Report.Events {
		fmt.Printf("  %-22s %10v", ev.Pass, ev.Duration.Round(time.Microsecond))
		for _, k := range sortedKeys(ev.Mutations) {
			fmt.Printf("  %s=%d", k, ev.Mutations[k])
		}
		fmt.Println()
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func readSource(suiteName string, args []string) (label, src string, err error) {
	if suiteName != "" {
		p, ok := suite.ByName(suiteName)
		if !ok {
			return "", "", fmt.Errorf("unknown suite program %q", suiteName)
		}
		return p.Name, p.Source, nil
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("usage: polaris [-baseline] [-summary] [-report] [-trace f] [-suite name | file.f]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return args[0], string(data), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polaris:", err)
	os.Exit(1)
}
