// Command polaris compiles a Fortran-subset source file with the
// Polaris pipeline (or the PFA-level baseline) and prints the
// restructured, directive-annotated program.
//
// Usage:
//
//	polaris [-baseline] [-summary] [-suite name] [file.f]
//
// With -suite, the named embedded benchmark program is compiled
// instead of reading a file.
package main

import (
	"flag"
	"fmt"
	"os"

	"polaris"
	"polaris/internal/suite"
)

func main() {
	baseline := flag.Bool("baseline", false, "use the 1996 vendor-compiler (PFA) technique level")
	summary := flag.Bool("summary", false, "print only the per-loop report, not the program")
	suiteName := flag.String("suite", "", "compile the named embedded benchmark (e.g. trfd, ocean, bdna)")
	flag.Parse()

	src, err := readSource(*suiteName, flag.Args())
	if err != nil {
		fail(err)
	}
	prog, err := polaris.Parse(src)
	if err != nil {
		fail(fmt.Errorf("parse: %w", err))
	}
	var res *polaris.Result
	if *baseline {
		res, err = polaris.ParallelizeBaseline(prog)
	} else {
		res, err = polaris.Parallelize(prog)
	}
	if err != nil {
		fail(fmt.Errorf("compile: %w", err))
	}
	if *summary {
		fmt.Print(res.Summary())
		return
	}
	fmt.Print(res.AnnotatedSource())
}

func readSource(suiteName string, args []string) (string, error) {
	if suiteName != "" {
		p, ok := suite.ByName(suiteName)
		if !ok {
			return "", fmt.Errorf("unknown suite program %q", suiteName)
		}
		return p.Source, nil
	}
	if len(args) != 1 {
		return "", fmt.Errorf("usage: polaris [-baseline] [-summary] [-suite name | file.f]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polaris:", err)
	os.Exit(1)
}
