package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"polaris"
)

// runEmit compiles a program and writes the generated source for the
// selected target: annotated Fortran (the directive output) or a
// standalone parallel Go program from the source-to-source backend.
func runEmit(args []string) int {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	target := fs.String("target", "go", "output language: go or fortran")
	outDir := fs.String("o", "", "write <program>.<ext> into this directory instead of stdout")
	procs := fs.Int("p", 0, "worker-team size baked into emitted Go (default 8)")
	baseline := fs.Bool("baseline", false, "use the 1996 vendor-compiler (PFA) technique level")
	suiteName := fs.String("suite", "", "emit the named embedded benchmark (e.g. trfd, ocean, bdna)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: polaris emit [-target go|fortran] [-o dir] [-p n] [-baseline] [-suite name | file.f]")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	label, src, err := readSource(*suiteName, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris emit:", err)
		return 2
	}
	prog, err := polaris.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris emit: parse:", err)
		return 1
	}
	opts := []polaris.Option{polaris.WithTraceLabel(label)}
	if *baseline {
		opts = append(opts, polaris.WithBaseline())
	}
	res, err := polaris.Compile(ctx, prog, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris emit: compile:", err)
		return 1
	}

	var eopts []polaris.EmitOption
	ext := ".go"
	switch *target {
	case "go":
		eopts = append(eopts, polaris.EmitGo, polaris.WithEmitLabel(label))
		if *procs > 0 {
			eopts = append(eopts, polaris.WithEmitProcessors(*procs))
		}
	case "fortran":
		eopts = append(eopts, polaris.EmitFortran)
		ext = ".f"
	default:
		fmt.Fprintf(os.Stderr, "polaris emit: unknown target %q (want go or fortran)\n", *target)
		return 2
	}

	out := os.Stdout
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "polaris emit:", err)
			return 1
		}
		path := filepath.Join(*outDir, emitFileName(label)+ext)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polaris emit:", err)
			return 1
		}
		defer f.Close()
		out = f
		fmt.Fprintln(os.Stderr, path)
	}
	if err := res.Emit(out, eopts...); err != nil {
		fmt.Fprintln(os.Stderr, "polaris emit:", err)
		return 1
	}
	return 0
}

// emitFileName reduces a source label (possibly a file path) to a safe
// output base name.
func emitFileName(label string) string {
	base := filepath.Base(label)
	base = strings.TrimSuffix(base, filepath.Ext(base))
	var b strings.Builder
	for _, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "program"
	}
	return b.String()
}
