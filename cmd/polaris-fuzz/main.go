// Command polaris-fuzz soaks the compiler against the differential
// soundness oracle: it generates seeded random programs in the Fortran
// subset (internal/fuzzgen), runs each through the four-way execution
// grid and metamorphic invariants (internal/oracle), minimizes any
// failure, and writes replayable JSONL artifacts.
//
// Typical runs:
//
//	polaris-fuzz -n 500 -seed 1                 # soak 500 programs
//	polaris-fuzz -n 2000 -j 8 -out bad.jsonl    # long soak, save failures
//	polaris-fuzz -replay bad.jsonl              # re-check saved failures
//
// The exit status is 1 when any discrepancy is found (or still
// reproduces, for -replay), 0 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"polaris/internal/fuzzgen"
	"polaris/internal/oracle"
)

func main() {
	var (
		n        = flag.Int("n", 200, "number of programs to generate and check")
		seed     = flag.Uint64("seed", 1, "base seed; program i uses seed+i")
		workers  = flag.Int("j", 4, "concurrent checks")
		blocks   = flag.Int("blocks", 0, "idiom blocks per program (0 = generator default)")
		trips    = flag.Int("trips", 0, "max loop trip count (0 = generator default)")
		alen     = flag.Int("len", 0, "working array length (0 = generator default)")
		out      = flag.String("out", "", "append discrepancy artifacts to this JSONL file")
		replay   = flag.String("replay", "", "re-check artifacts from this JSONL file instead of generating")
		tol      = flag.Float64("tol", 0, "relative state tolerance (generated programs are exact; keep 0)")
		procs    = flag.Int("p", 8, "primary simulated processor count")
		noAbl    = flag.Bool("no-ablation", false, "skip the ablation grid (faster)")
		noMeta   = flag.Bool("no-metamorphic", false, "skip processor-count and trace invariants (faster)")
		noMin    = flag.Bool("no-minimize", false, "report failures without shrinking them")
		progress = flag.Duration("progress", 10*time.Second, "soak progress-line interval (0 disables)")
		pprofOut = flag.String("pprof", "", "write a CPU profile of the soak to this file")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polaris-fuzz:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "polaris-fuzz:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := oracle.Config{
		Processors:      *procs,
		Tolerance:       *tol,
		SkipAblation:    *noAbl,
		SkipMetamorphic: *noMeta,
		SkipMinimize:    *noMin,
	}

	if *replay != "" {
		os.Exit(replayArtifacts(ctx, *replay, cfg))
	}

	var artifacts *os.File
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polaris-fuzz:", err)
			os.Exit(2)
		}
		defer f.Close()
		artifacts = f
	}

	// Soak progress: one line per -progress interval with throughput
	// (execs/sec over the whole soak), corpus size (programs checked so
	// far), and the running mismatch count.
	start := time.Now()
	var progMu sync.Mutex
	lastLine := start
	rc := oracle.RunConfig{
		Seed:    *seed,
		Count:   *n,
		Workers: *workers,
		Gen:     fuzzgen.Config{Blocks: *blocks, MaxTrips: *trips, ArrayLen: *alen},
		Check:   cfg,
		Progress: func(done, bad int) {
			if *progress <= 0 && done != *n {
				return
			}
			progMu.Lock()
			defer progMu.Unlock()
			now := time.Now()
			if done != *n && now.Sub(lastLine) < *progress {
				return
			}
			lastLine = now
			elapsed := now.Sub(start).Seconds()
			rate := 0.0
			if elapsed > 0 {
				rate = float64(done) / elapsed
			}
			fmt.Fprintf(os.Stderr, "soak: %d/%d checked, %.1f execs/sec, corpus %d, %d mismatches\n",
				done, *n, rate, done, bad)
		},
	}
	if artifacts != nil {
		rc.Artifacts = artifacts
	}
	rep, err := oracle.Run(ctx, rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris-fuzz:", err)
		os.Exit(2)
	}

	fmt.Printf("%d programs checked (seed %d..%d), %d discrepancies\n",
		rep.Programs, *seed, *seed+uint64(*n)-1, len(rep.Discrepancies))
	idioms := make([]string, 0, len(rep.IdiomCounts))
	for id := range rep.IdiomCounts {
		idioms = append(idioms, id)
	}
	sort.Strings(idioms)
	fmt.Println("idiom coverage:")
	for _, id := range idioms {
		fmt.Printf("  %-22s %5d\n", id, rep.IdiomCounts[id])
	}
	for _, d := range rep.Discrepancies {
		fmt.Printf("\nFAIL %s mode %s: %s\n", d.Label, d.Mode, d.Detail)
		if d.Minimized != "" {
			fmt.Printf("minimized to %d lines:\n%s\n", d.MinimizedLines, d.Minimized)
		}
	}
	if len(rep.Discrepancies) > 0 {
		os.Exit(1)
	}
}

// replayArtifacts re-runs saved failures and reports which still
// reproduce. Exit 0 means every recorded bug is fixed.
func replayArtifacts(ctx context.Context, path string, cfg oracle.Config) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris-fuzz:", err)
		return 2
	}
	defer f.Close()
	arts, err := oracle.ReadArtifacts(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polaris-fuzz:", err)
		return 2
	}
	still := 0
	for i, a := range arts {
		ds, err := oracle.Replay(ctx, a, cfg)
		switch {
		case err != nil:
			fmt.Printf("artifact %d (%s): replay error: %v\n", i, a.Label, err)
			still++
		case len(ds) > 0:
			fmt.Printf("artifact %d (%s): still fails — %s: %s\n", i, a.Label, ds[0].Mode, ds[0].Detail)
			still++
		default:
			fmt.Printf("artifact %d (%s): fixed\n", i, a.Label)
		}
	}
	fmt.Printf("%d/%d artifacts still reproduce\n", still, len(arts))
	if still > 0 {
		return 1
	}
	return 0
}
