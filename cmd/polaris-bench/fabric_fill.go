package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"

	"polaris/internal/core"
	"polaris/internal/fabric"
	"polaris/internal/server"
	"polaris/internal/suite"
	"polaris/internal/telemetry"
)

// fabricFill is the BENCH_polaris.json fabric_fill row: a two-node
// compile fabric's warm peer-fill latency against the same node's
// local cold-compile latency, quantiles read from the requesting
// node's own histograms. PeerHitP50NS < LocalColdP50NS is the tier's
// reason to exist — pulling a finished entry from a warm owner beats
// recompiling it.
type fabricFill struct {
	PeerHitRequests   int     `json:"peer_hit_requests"`
	LocalColdRequests int     `json:"local_cold_requests"`
	PeerHitP50NS      float64 `json:"peer_hit_p50_ns"`
	PeerHitP99NS      float64 `json:"peer_hit_p99_ns"`
	LocalColdP50NS    float64 `json:"local_cold_p50_ns"`
	LocalColdP99NS    float64 `json:"local_cold_p99_ns"`
	// SpeedupP50 is LocalColdP50NS / PeerHitP50NS.
	SpeedupP50 float64 `json:"speedup_p50"`
}

// benchSwap lets an httptest server's URL exist before the handler it
// fronts (the fabric needs peer URLs at construction, and the servers
// need the fabric).
type benchSwap struct{ h atomic.Value }

func (b *benchSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.h.Load().(http.Handler).ServeHTTP(w, r)
}

// measureFabricFill stands up a two-node fabric (both nodes on real
// listeners — fills travel over HTTP), routes comment-distinct suite
// variants through node B, and splits B's latency histogram by how
// each compile was satisfied: keys B owns are local cold compiles;
// keys A owns are peer fills from an A warmed in advance.
func measureFabricFill(progs []suite.Program) (fabricFill, error) {
	swapA, swapB := &benchSwap{}, &benchSwap{}
	tsA, tsB := httptest.NewServer(swapA), httptest.NewServer(swapB)
	defer tsA.Close()
	defer tsB.Close()

	peers := map[string]string{"a": tsA.URL, "b": tsB.URL}
	newNode := func(self string) (*server.Server, error) {
		fab, err := fabric.New(fabric.Config{Self: self, Peers: peers})
		if err != nil {
			return nil, err
		}
		return server.New(server.Config{Workers: 4, Fabric: fab}), nil
	}
	srvA, err := newNode("a")
	if err != nil {
		return fabricFill{}, err
	}
	srvB, err := newNode("b")
	if err != nil {
		return fabricFill{}, err
	}
	swapA.h.Store(srvA.Handler())
	swapB.h.Store(srvB.Handler())

	ring, err := fabric.New(fabric.Config{Self: "a", Peers: peers})
	if err != nil {
		return fabricFill{}, err
	}

	post := func(h http.Handler, src string) error {
		body, err := json.Marshal(map[string]string{"source": src})
		if err != nil {
			return err
		}
		req := httptest.NewRequest("POST", "/v1/compile", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			return fmt.Errorf("fabric fill probe: status %d: %s", w.Code, w.Body.String())
		}
		return nil
	}

	// Partition comment-distinct variants by ring owner. Ownership is a
	// property of the key, so both nodes agree; the split lands near
	// half and half by ring balance.
	const rounds = 4
	var ownedByA, ownedByB []string
	for r := 0; r < rounds; r++ {
		for _, p := range progs {
			src := fmt.Sprintf("C fabric-fill variant %d\n%s", r, p.Source)
			if owner, _, _ := ring.Owner(suite.RouteKey(src, core.PolarisOptions())); owner == "a" {
				ownedByA = append(ownedByA, src)
			} else {
				ownedByB = append(ownedByB, src)
			}
		}
	}

	// Warm the owner, then fill from it: every A-owned compile on B is
	// a peer_hit. B-owned sources compile locally cold on B.
	for _, src := range ownedByA {
		if err := post(srvA.Handler(), src); err != nil {
			return fabricFill{}, err
		}
	}
	for _, src := range ownedByA {
		if err := post(srvB.Handler(), src); err != nil {
			return fabricFill{}, err
		}
	}
	for _, src := range ownedByB {
		if err := post(srvB.Handler(), src); err != nil {
			return fabricFill{}, err
		}
	}

	var out fabricFill
	for _, ss := range srvB.Telemetry().Snapshot() {
		if ss.Route != "compile" {
			continue
		}
		switch ss.Outcome {
		case telemetry.OutcomePeerHit:
			out.PeerHitRequests = int(ss.Count)
			out.PeerHitP50NS = ss.Quantile(0.50)
			out.PeerHitP99NS = ss.Quantile(0.99)
		case telemetry.OutcomeCold:
			out.LocalColdRequests = int(ss.Count)
			out.LocalColdP50NS = ss.Quantile(0.50)
			out.LocalColdP99NS = ss.Quantile(0.99)
		}
	}
	if out.PeerHitRequests != len(ownedByA) || out.LocalColdRequests != len(ownedByB) {
		return out, fmt.Errorf("fabric fill probe: %d peer_hit / %d cold recorded, want %d / %d",
			out.PeerHitRequests, out.LocalColdRequests, len(ownedByA), len(ownedByB))
	}
	if out.PeerHitRequests == 0 || out.LocalColdRequests == 0 {
		return out, fmt.Errorf("fabric fill probe: degenerate ring split (%d/%d)",
			out.PeerHitRequests, out.LocalColdRequests)
	}
	if out.PeerHitP50NS > 0 {
		out.SpeedupP50 = out.LocalColdP50NS / out.PeerHitP50NS
	}
	return out, nil
}
