package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"polaris/internal/server"
	"polaris/internal/suite"
	"polaris/internal/telemetry"
)

// serveLatency is the BENCH_polaris.json serve_latency row: the
// compile service's cold and warm-hit latency profile, with quantiles
// derived from the service's own per-(route, outcome) histograms (the
// same data GET /metrics exposes), so the ledger tracks exactly what a
// client of the running service would observe.
type serveLatency struct {
	ColdRequests int     `json:"cold_requests"`
	WarmRequests int     `json:"warm_requests"`
	ColdP50NS    float64 `json:"cold_p50_ns"`
	ColdP99NS    float64 `json:"cold_p99_ns"`
	WarmP50NS    float64 `json:"warm_p50_ns"`
	WarmP99NS    float64 `json:"warm_p99_ns"`
}

// measureServeLatency drives an in-process compile service through its
// HTTP handler: coldRounds comment-distinct variants of every suite
// program (each a cold compile), then warmRounds repeats of the first
// variant (each a cache hit), and reads the quantiles back from the
// server's telemetry registry.
func measureServeLatency(progs []suite.Program) (serveLatency, error) {
	srv := server.New(server.Config{})
	h := srv.Handler()
	post := func(src string) error {
		body, err := json.Marshal(map[string]string{"source": src})
		if err != nil {
			return err
		}
		req := httptest.NewRequest("POST", "/v1/compile", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			return fmt.Errorf("serve latency probe: status %d: %s", w.Code, w.Body.String())
		}
		return nil
	}

	variant := func(r int, p suite.Program) string {
		return fmt.Sprintf("C serve-latency variant %d\n%s", r, p.Source)
	}
	const coldRounds, warmRounds = 4, 16
	for r := 0; r < coldRounds; r++ {
		for _, p := range progs {
			if err := post(variant(r, p)); err != nil {
				return serveLatency{}, err
			}
		}
	}
	for r := 0; r < warmRounds; r++ {
		for _, p := range progs {
			if err := post(variant(0, p)); err != nil {
				return serveLatency{}, err
			}
		}
	}

	var out serveLatency
	for _, ss := range srv.Telemetry().Snapshot() {
		if ss.Route != "compile" {
			continue
		}
		switch ss.Outcome {
		case telemetry.OutcomeCold:
			out.ColdRequests = int(ss.Count)
			out.ColdP50NS = ss.Quantile(0.50)
			out.ColdP99NS = ss.Quantile(0.99)
		case telemetry.OutcomeCacheHit:
			out.WarmRequests = int(ss.Count)
			out.WarmP50NS = ss.Quantile(0.50)
			out.WarmP99NS = ss.Quantile(0.99)
		}
	}
	if out.ColdRequests != coldRounds*len(progs) || out.WarmRequests != warmRounds*len(progs) {
		return out, fmt.Errorf("serve latency probe: %d cold / %d warm requests recorded, want %d / %d",
			out.ColdRequests, out.WarmRequests, coldRounds*len(progs), warmRounds*len(progs))
	}
	return out, nil
}
