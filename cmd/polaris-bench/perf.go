package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"polaris/internal/core"
	"polaris/internal/fuzzgen"
	"polaris/internal/parser"
	"polaris/internal/suite"
	"polaris/internal/symbolic"
)

// perfReport is the BENCH_polaris.json schema: the repo-root
// performance-trajectory file CI regenerates and uploads on every
// build, so compile-speed regressions are visible across commits.
type perfReport struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Arch   string `json:"arch"`
	// Procs is GOMAXPROCS at measurement time: the mega_compile rows
	// use that many unit workers, so scaling comparisons across
	// commits are only meaningful at equal Procs.
	Procs int `json:"procs"`
	// SuiteCompile is one cold-cache compilation of the full
	// 16-program suite under the complete technique set.
	SuiteCompile perfEntry `json:"suite_compile"`
	// MegaCompile is the megaprogram scaling benchmark: one cold
	// compile per synthetic-corpus entry (parse excluded) with the
	// unit-parallel pipeline at Procs workers. NsPerLine is the
	// scaling signal; SerialNsPerOp is the same compile forced onto
	// the serial unit schedule, so SerialNsPerOp / NsPerOp is the
	// parallel speedup on this machine.
	MegaCompile map[string]megaEntry `json:"mega_compile"`
	// Prover microbenchmarks (see internal/symbolic/benchfix.go).
	Prove        perfEntry `json:"prove"`
	ProveColdEnv perfEntry `json:"prove_cold_env"`
	Compare      perfEntry `json:"compare"`
	// ProverStats aggregates the prover counters over the suite
	// compile: the memo hit rate is the tentpole's payoff metric.
	ProverStats symbolic.ProverStats `json:"prover_stats"`
	MemoHitRate float64              `json:"memo_hit_rate"`
	// ServeLatency is the compile service's cold / warm-hit latency
	// profile, quantiles read from the service's own histograms.
	ServeLatency serveLatency `json:"serve_latency"`
}

// perfEntry is one benchmark measurement.
type perfEntry struct {
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// megaEntry is one megaprogram scaling measurement.
type megaEntry struct {
	perfEntry
	Units         int     `json:"units"`
	Lines         int     `json:"lines"`
	NsPerLine     float64 `json:"ns_per_line"`
	SerialNsPerOp float64 `json:"serial_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

func toEntry(r testing.BenchmarkResult) perfEntry {
	return perfEntry{
		N:           r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// writePerfJSON measures the perf trajectory and writes it to path.
// The measurements mirror the testing.B benchmarks in
// internal/symbolic and internal/suite, run through testing.Benchmark
// so the binary needs no test harness.
func writePerfJSON(ctx context.Context, path string) error {
	rep := perfReport{
		Schema: "polaris-bench-perf/v1",
		Go:     runtime.Version(),
		Arch:   runtime.GOOS + "/" + runtime.GOARCH,
	}

	symbolic.ResetProverStats()
	progs := suite.All()
	rep.SuiteCompile = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range progs {
				if _, err := core.CompileContext(ctx, p.Parse(), core.PolarisOptions()); err != nil {
					b.Fatalf("%s: %v", p.Name, err)
				}
			}
		}
	}))
	rep.ProverStats = symbolic.ReadProverStats()
	if rep.ProverStats.Queries > 0 {
		rep.MemoHitRate = float64(rep.ProverStats.MemoHits) / float64(rep.ProverStats.Queries)
	}

	rep.Procs = runtime.GOMAXPROCS(0)
	rep.MegaCompile = map[string]megaEntry{}
	for _, spec := range fuzzgen.MegaCorpus() {
		mp := spec.Generate()
		prog, err := parser.ParseProgram(mp.Source)
		if err != nil {
			return fmt.Errorf("mega corpus %s: parse: %w", spec.Name, err)
		}
		compileBench := func(workers int) testing.BenchmarkResult {
			opt := core.PolarisOptions()
			opt.UnitWorkers = workers
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.CompileContext(ctx, prog, opt); err != nil {
						b.Fatalf("%s: %v", spec.Name, err)
					}
				}
			})
		}
		par := compileBench(0)
		serial := compileBench(1)
		e := megaEntry{
			perfEntry: toEntry(par),
			Units:     mp.Units,
			Lines:     mp.Lines,
			NsPerLine: float64(par.NsPerOp()) / float64(mp.Lines),
		}
		e.SerialNsPerOp = float64(serial.NsPerOp())
		if e.NsPerOp > 0 {
			e.Speedup = e.SerialNsPerOp / e.NsPerOp
		}
		rep.MegaCompile[spec.Name] = e
	}

	env := symbolic.BenchEnv()
	queries := symbolic.BenchQueries()
	rep.Prove = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				got := false
				if q.Strict {
					got = env.ProveGT(q.E)
				} else {
					got = env.ProveGE(q.E)
				}
				if got != q.Want {
					b.Fatalf("%s: got %v want %v", q.Name, got, q.Want)
				}
			}
		}
	}))
	rep.ProveColdEnv = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cold := symbolic.BenchEnv()
			for _, q := range queries {
				got := false
				if q.Strict {
					got = cold.ProveGT(q.E)
				} else {
					got = cold.ProveGE(q.E)
				}
				if got != q.Want {
					b.Fatalf("%s: got %v want %v", q.Name, got, q.Want)
				}
			}
		}
	}))
	sl, err := measureServeLatency(progs)
	if err != nil {
		return err
	}
	rep.ServeLatency = sl

	pairs := symbolic.BenchComparePairs()
	rep.Compare = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cold := symbolic.BenchEnv()
			for _, pr := range pairs {
				if got := cold.Compare(pr.A, pr.B); got != pr.Want {
					b.Fatalf("%s: got %v want %v", pr.Name, got, pr.Want)
				}
			}
		}
	}))

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
