package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"polaris/internal/core"
	"polaris/internal/fuzzgen"
	"polaris/internal/parser"
	"polaris/internal/suite"
	"polaris/internal/symbolic"
)

// perfReport is the BENCH_polaris.json schema: the repo-root
// performance-trajectory file CI regenerates and uploads on every
// build, so compile-speed regressions are visible across commits.
type perfReport struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Arch   string `json:"arch"`
	// Procs is GOMAXPROCS at measurement time: the mega_compile rows
	// use that many unit workers, so scaling comparisons across
	// commits are only meaningful at equal Procs.
	Procs int `json:"procs"`
	// SuiteCompile is one cold-cache compilation of the full
	// 16-program suite under the complete technique set.
	SuiteCompile perfEntry `json:"suite_compile"`
	// MegaCompile is the megaprogram scaling benchmark: one cold
	// compile per synthetic-corpus entry (parse excluded) with the
	// unit-parallel pipeline at Procs workers. NsPerLine is the
	// scaling signal; SerialNsPerOp is the same compile forced onto
	// the serial unit schedule, so SerialNsPerOp / NsPerOp is the
	// parallel speedup on this machine.
	MegaCompile map[string]megaEntry `json:"mega_compile"`
	// IncrementalCompile is the incremental-recompile benchmark: a
	// one-unit edit to mega50k compiled against a warm per-unit memo,
	// with each iteration editing a distinct unit so exactly one unit
	// recompiles. ColdNsPerOp is the memo-less mega50k compile (the
	// mega_compile row at the same worker count); Speedup is cold /
	// incremental — the payoff of recompiling only what changed.
	IncrementalCompile incrementalEntry `json:"incremental_compile"`
	// Prover microbenchmarks (see internal/symbolic/benchfix.go).
	Prove        perfEntry `json:"prove"`
	ProveColdEnv perfEntry `json:"prove_cold_env"`
	Compare      perfEntry `json:"compare"`
	// ProverStats aggregates the prover counters over the suite
	// compile: the memo hit rate is the tentpole's payoff metric.
	ProverStats symbolic.ProverStats `json:"prover_stats"`
	MemoHitRate float64              `json:"memo_hit_rate"`
	// ServeLatency is the compile service's cold / warm-hit latency
	// profile, quantiles read from the service's own histograms.
	ServeLatency serveLatency `json:"serve_latency"`
	// FabricFill is the two-node peer tier's warm fill latency against
	// a local cold compile on the same node.
	FabricFill fabricFill `json:"fabric_fill"`
}

// perfEntry is one benchmark measurement.
type perfEntry struct {
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// megaEntry is one megaprogram scaling measurement.
type megaEntry struct {
	perfEntry
	Units         int     `json:"units"`
	Lines         int     `json:"lines"`
	NsPerLine     float64 `json:"ns_per_line"`
	SerialNsPerOp float64 `json:"serial_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// incrementalEntry is the incremental-recompile measurement.
type incrementalEntry struct {
	perfEntry
	Units           int     `json:"units"`
	UnitsRecompiled int     `json:"units_recompiled"`
	ColdNsPerOp     float64 `json:"cold_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

func toEntry(r testing.BenchmarkResult) perfEntry {
	return perfEntry{
		N:           r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// writePerfJSON measures the perf trajectory and writes it to path.
// The measurements mirror the testing.B benchmarks in
// internal/symbolic and internal/suite, run through testing.Benchmark
// so the binary needs no test harness.
func writePerfJSON(ctx context.Context, path string) error {
	rep := perfReport{
		Schema: "polaris-bench-perf/v1",
		Go:     runtime.Version(),
		Arch:   runtime.GOOS + "/" + runtime.GOARCH,
	}

	symbolic.ResetProverStats()
	progs := suite.All()
	rep.SuiteCompile = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range progs {
				if _, err := core.CompileContext(ctx, p.Parse(), core.PolarisOptions()); err != nil {
					b.Fatalf("%s: %v", p.Name, err)
				}
			}
		}
	}))
	rep.ProverStats = symbolic.ReadProverStats()
	if rep.ProverStats.Queries > 0 {
		rep.MemoHitRate = float64(rep.ProverStats.MemoHits) / float64(rep.ProverStats.Queries)
	}

	rep.Procs = runtime.GOMAXPROCS(0)
	rep.MegaCompile = map[string]megaEntry{}
	for _, spec := range fuzzgen.MegaCorpus() {
		mp := spec.Generate()
		prog, err := parser.ParseProgram(mp.Source)
		if err != nil {
			return fmt.Errorf("mega corpus %s: parse: %w", spec.Name, err)
		}
		compileBench := func(workers int) testing.BenchmarkResult {
			opt := core.PolarisOptions()
			opt.UnitWorkers = workers
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.CompileContext(ctx, prog, opt); err != nil {
						b.Fatalf("%s: %v", spec.Name, err)
					}
				}
			})
		}
		par := compileBench(0)
		serial := compileBench(1)
		e := megaEntry{
			perfEntry: toEntry(par),
			Units:     mp.Units,
			Lines:     mp.Lines,
			NsPerLine: float64(par.NsPerOp()) / float64(mp.Lines),
		}
		e.SerialNsPerOp = float64(serial.NsPerOp())
		if e.NsPerOp > 0 {
			e.Speedup = e.SerialNsPerOp / e.NsPerOp
		}
		rep.MegaCompile[spec.Name] = e
	}

	inc, err := measureIncremental(ctx, rep.MegaCompile["mega50k"].NsPerOp)
	if err != nil {
		return err
	}
	rep.IncrementalCompile = inc

	env := symbolic.BenchEnv()
	queries := symbolic.BenchQueries()
	rep.Prove = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				got := false
				if q.Strict {
					got = env.ProveGT(q.E)
				} else {
					got = env.ProveGE(q.E)
				}
				if got != q.Want {
					b.Fatalf("%s: got %v want %v", q.Name, got, q.Want)
				}
			}
		}
	}))
	rep.ProveColdEnv = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cold := symbolic.BenchEnv()
			for _, q := range queries {
				got := false
				if q.Strict {
					got = cold.ProveGT(q.E)
				} else {
					got = cold.ProveGE(q.E)
				}
				if got != q.Want {
					b.Fatalf("%s: got %v want %v", q.Name, got, q.Want)
				}
			}
		}
	}))
	sl, err := measureServeLatency(progs)
	if err != nil {
		return err
	}
	rep.ServeLatency = sl

	ff, err := measureFabricFill(progs)
	if err != nil {
		return err
	}
	rep.FabricFill = ff

	pairs := symbolic.BenchComparePairs()
	rep.Compare = toEntry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cold := symbolic.BenchEnv()
			for _, pr := range pairs {
				if got := cold.Compare(pr.A, pr.B); got != pr.Want {
					b.Fatalf("%s: got %v want %v", pr.Name, got, pr.Want)
				}
			}
		}
	}))

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// measureIncremental times a one-unit edit to mega50k against a warm
// per-unit memo. Each iteration applies a distinct edit (a unique tag
// in a unique unit), so every compile is a genuine "developer touched
// one subroutine" recompile: all other units replay from the memo.
// Parse time is excluded, matching the mega_compile rows.
func measureIncremental(ctx context.Context, coldNsPerOp float64) (incrementalEntry, error) {
	var spec fuzzgen.MegaSpec
	for _, s := range fuzzgen.MegaCorpus() {
		if s.Name == "mega50k" {
			spec = s
		}
	}
	mp := spec.Generate()
	memo := core.NewUnitMemo(core.MemoLimits{})
	warm := core.PolarisOptions()
	warm.UnitMemo = memo
	warm.TrustedInput = true
	base, err := parser.ParseProgram(mp.Source)
	if err != nil {
		return incrementalEntry{}, fmt.Errorf("mega50k: parse: %w", err)
	}
	res, err := core.CompileContext(ctx, base, warm)
	if err != nil {
		return incrementalEntry{}, fmt.Errorf("mega50k: warm compile: %w", err)
	}
	units := len(res.Program.Units)

	tag := 0
	e := incrementalEntry{Units: units, ColdNsPerOp: coldNsPerOp}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tag++
			editedSrc, unit := fuzzgen.EditOneUnit(mp.Source, tag, tag)
			if unit == "" {
				b.Fatal("mega50k: EditOneUnit found no unit to edit")
			}
			prog, perr := parser.ParseProgram(editedSrc)
			if perr != nil {
				b.Fatalf("mega50k edit: parse: %v", perr)
			}
			opt := core.PolarisOptions()
			opt.UnitMemo = memo
			opt.TrustedInput = true // prog is parsed fresh per iteration
			// Collect the setup garbage (a fresh ~50k-line parse per
			// iteration) while the timer is stopped, so the timed
			// region pays only for its own allocation, not the
			// setup's deferred GC debt.
			runtime.GC()
			b.StartTimer()
			res, cerr := core.CompileContext(ctx, prog, opt)
			b.StopTimer()
			if cerr != nil {
				b.Fatalf("mega50k edit: %v", cerr)
			}
			if res.UnitsRecompiled != 1 {
				b.Fatalf("mega50k edit recompiled %d units, want exactly 1", res.UnitsRecompiled)
			}
			e.UnitsRecompiled = res.UnitsRecompiled
		}
	})
	e.perfEntry = toEntry(r)
	if e.NsPerOp > 0 {
		e.Speedup = e.ColdNsPerOp / e.NsPerOp
	}
	return e, nil
}
