// Command polaris-bench regenerates the paper's evaluation artifacts on
// the synthetic suite and the simulated machine:
//
//	polaris-bench -table1        Table 1 (codes, lines, serial time)
//	polaris-bench -fig7 [-p 8]   Figure 7 (speedup: Polaris vs PFA)
//	polaris-bench -fig6 [-p 8]   Figure 6 (TRACK: PD-test speedup and
//	                             potential slowdown vs processors)
//	polaris-bench -all           everything
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"polaris/internal/suite"
)

func main() {
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	fig6 := flag.Bool("fig6", false, "regenerate Figure 6")
	ablation := flag.Bool("ablation", false, "run the technique ablation study")
	all := flag.Bool("all", false, "regenerate everything")
	procs := flag.Int("p", 8, "processors for Figure 7 / max processors for Figure 6")
	flag.Parse()
	if !*table1 && !*fig7 && !*fig6 && !*ablation && !*all {
		flag.Usage()
		os.Exit(2)
	}
	if *table1 || *all {
		if err := printTable1(); err != nil {
			fail(err)
		}
	}
	if *fig7 || *all {
		if err := printFigure7(*procs); err != nil {
			fail(err)
		}
	}
	if *fig6 || *all {
		if err := printFigure6(*procs); err != nil {
			fail(err)
		}
	}
	if *ablation || *all {
		if err := printAblation(*procs); err != nil {
			fail(err)
		}
	}
}

func printAblation(procs int) error {
	rows, err := suite.Ablation(procs)
	if err != nil {
		return err
	}
	fmt.Printf("Ablation: geometric-mean speedup over the suite (%d processors)\n", procs)
	full := 0.0
	if len(rows) > 0 {
		full = rows[0].FullGeoMean
	}
	fmt.Printf("%-24s %8s   hurt programs (>20%% loss)\n", "removed technique", "geomean")
	fmt.Printf("%-24s %8.2f\n", "(none: full pipeline)", full)
	for _, r := range rows {
		fmt.Printf("%-24s %8.2f   %s\n", r.Technique, r.GeoMean, strings.Join(r.HurtPrograms, " "))
	}
	fmt.Println()
	return nil
}

func printTable1() error {
	rows, err := suite.Table1()
	if err != nil {
		return err
	}
	fmt.Println("Table 1: Benchmark codes studied (synthetic suite, simulated machine)")
	fmt.Printf("%-10s %-8s %6s %14s\n", "Program", "Origin", "Lines", "Ser. cycles")
	for _, r := range rows {
		fmt.Printf("%-10s %-8s %6d %14d\n", strings.ToUpper(r.Name), r.Origin, r.Lines, r.SerialCycles)
	}
	fmt.Println()
	return nil
}

func printFigure7(procs int) error {
	rows, err := suite.Figure7(procs)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 7: Speedup on %d simulated processors — Polaris vs PFA baseline\n", procs)
	fmt.Printf("%-10s %8s %8s   %s\n", "Program", "Polaris", "PFA", "")
	for _, r := range rows {
		fmt.Printf("%-10s %8.2f %8.2f   %s\n", strings.ToUpper(r.Name), r.Polaris, r.PFA, bars(r.Polaris, r.PFA))
	}
	fmt.Println()
	return nil
}

func bars(polaris, pfa float64) string {
	bar := func(v float64, ch string) string {
		n := int(v*2 + 0.5)
		if n < 0 {
			n = 0
		}
		return strings.Repeat(ch, n)
	}
	return fmt.Sprintf("P|%s  F|%s", bar(polaris, "#"), bar(pfa, "-"))
}

func printFigure6(maxP int) error {
	rows, err := suite.Figure6(maxP)
	if err != nil {
		return err
	}
	fmt.Println("Figure 6 (top): Speedup of loop TRACK/NLFILT vs processors (10% of")
	fmt.Println("invocations fail the PD test and re-execute sequentially)")
	fmt.Printf("%5s %8s %8s %10s\n", "Procs", "Speedup", "Passes", "Failures")
	for _, r := range rows {
		fmt.Printf("%5d %8.2f %8d %10d\n", r.Procs, r.Speedup, r.Passes, r.Failures)
	}
	fmt.Println()
	fmt.Println("Figure 6 (bottom): Potential slowdown (Tseq + Tpdt)/Tseq vs processors")
	fmt.Printf("%5s %9s\n", "Procs", "Slowdown")
	for _, r := range rows {
		fmt.Printf("%5d %9.3f\n", r.Procs, r.Slowdown)
	}
	fmt.Println()
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polaris-bench:", err)
	os.Exit(1)
}
