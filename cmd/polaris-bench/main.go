// Command polaris-bench regenerates the paper's evaluation artifacts on
// the synthetic suite and the simulated machine:
//
//	polaris-bench -table1        Table 1 (codes, lines, serial time)
//	polaris-bench -fig7 [-p 8]   Figure 7 (speedup: Polaris vs PFA)
//	polaris-bench -fig6 [-p 8]   Figure 6 (TRACK: PD-test speedup and
//	                             potential slowdown vs processors)
//	polaris-bench -all           everything
//
// The suite compiles and runs concurrently across a bounded worker
// pool (-j, default one worker per CPU) with a content-hash keyed
// compile cache shared by all figures. With -trace FILE, every Polaris
// compilation streams one JSONL event per pipeline pass (name,
// duration, mutation counts) to FILE.
//
// Observability surfaces:
//
//	-json FILE     machine-readable benchmark trajectory (per-program
//	               speedups, parallel coverage, geomeans); "-" = stdout
//	-trace2 FILE   trace-schema v2 JSONL: per-pass spans, per-loop
//	               decision records, and runtime metrics from every
//	               compilation and execution
//	-pprof FILE    CPU profile of the whole run (go tool pprof)
//	-metrics       dump the observer's event counters as JSON on exit
//	-bench-out F   measure the perf trajectory (cold full-suite compile
//	               plus the symbolic-prover microbenchmarks) and write
//	               the BENCH_polaris.json report CI uploads
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"

	"polaris/internal/obsv"
	"polaris/internal/passes"
	"polaris/internal/suite"
)

func main() {
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	fig7 := flag.Bool("fig7", false, "regenerate Figure 7")
	fig6 := flag.Bool("fig6", false, "regenerate Figure 6")
	ablation := flag.Bool("ablation", false, "run the technique ablation study")
	all := flag.Bool("all", false, "regenerate everything")
	procs := flag.Int("p", 8, "processors for Figure 7 / max processors for Figure 6")
	workers := flag.Int("j", 0, "suite compile/run worker pool size (0 = one per CPU)")
	tracePath := flag.String("trace", "", "write per-pass JSONL trace events to this file")
	jsonPath := flag.String("json", "", "write the machine-readable benchmark report to this file (\"-\" = stdout)")
	trace2Path := flag.String("trace2", "", "write trace-schema v2 JSONL (spans, decisions, run metrics) to this file")
	pprofPath := flag.String("pprof", "", "write a CPU profile of the run to this file")
	metrics := flag.Bool("metrics", false, "print the observer's event counters as JSON on exit")
	benchOut := flag.String("bench-out", "", "measure the perf trajectory (suite compile + prover microbenchmarks) and write BENCH_polaris.json to this path (\"-\" = stdout)")
	flag.Parse()
	if !*table1 && !*fig7 && !*fig6 && !*ablation && !*all && *jsonPath == "" && *benchOut == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofPath != "" {
		f, err := os.Create(*pprofPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	runner := suite.NewRunner()
	runner.Workers = *workers
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		runner.Trace = passes.NewTraceWriter(f)
	}
	obs := obsv.NewObserver()
	runner.Observer = obs
	var trace2 *obsv.TraceWriter
	if *trace2Path != "" {
		f, err := os.Create(*trace2Path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		trace2 = obsv.NewTraceWriter(f)
		obs.SetTrace(trace2)
	}

	if *table1 || *all {
		if err := printTable1(ctx, runner); err != nil {
			fail(err)
		}
	}
	if *fig7 || *all {
		if err := printFigure7(ctx, runner, *procs); err != nil {
			fail(err)
		}
	}
	if *fig6 || *all {
		if err := printFigure6(ctx, runner, *procs); err != nil {
			fail(err)
		}
	}
	if *ablation || *all {
		if err := printAblation(ctx, runner, *procs); err != nil {
			fail(err)
		}
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(ctx, runner, *procs, *jsonPath); err != nil {
			fail(err)
		}
	}
	if *benchOut != "" {
		if err := writePerfJSON(ctx, *benchOut); err != nil {
			fail(err)
		}
	}
	if trace2 != nil {
		if err := trace2.Err(); err != nil {
			fail(fmt.Errorf("trace2: %w", err))
		}
	}
	if *metrics {
		out, err := json.MarshalIndent(obs.Counters(), "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: %s\n", out)
	}
}

// writeBenchJSON assembles the machine-readable benchmark trajectory
// and writes it to path ("-" = stdout).
func writeBenchJSON(ctx context.Context, r *suite.Runner, procs int, path string) error {
	rep, err := r.Bench(ctx, procs)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func printAblation(ctx context.Context, r *suite.Runner, procs int) error {
	rows, err := r.Ablation(ctx, procs)
	if err != nil {
		return err
	}
	fmt.Printf("Ablation: geometric-mean speedup over the suite (%d processors)\n", procs)
	full := 0.0
	if len(rows) > 0 {
		full = rows[0].FullGeoMean
	}
	fmt.Printf("%-24s %8s   hurt programs (>20%% loss)\n", "removed technique", "geomean")
	fmt.Printf("%-24s %8.2f\n", "(none: full pipeline)", full)
	for _, row := range rows {
		fmt.Printf("%-24s %8.2f   %s\n", row.Technique, row.GeoMean, strings.Join(row.HurtPrograms, " "))
	}
	fmt.Println()
	return nil
}

func printTable1(ctx context.Context, r *suite.Runner) error {
	rows, err := r.Table1(ctx)
	if err != nil {
		return err
	}
	fmt.Println("Table 1: Benchmark codes studied (synthetic suite, simulated machine)")
	fmt.Printf("%-10s %-8s %6s %14s\n", "Program", "Origin", "Lines", "Ser. cycles")
	for _, row := range rows {
		fmt.Printf("%-10s %-8s %6d %14d\n", strings.ToUpper(row.Name), row.Origin, row.Lines, row.SerialCycles)
	}
	fmt.Println()
	return nil
}

func printFigure7(ctx context.Context, r *suite.Runner, procs int) error {
	rows, err := r.Figure7(ctx, procs)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 7: Speedup on %d simulated processors — Polaris vs PFA baseline\n", procs)
	fmt.Printf("%-10s %8s %8s %6s   %s\n", "Program", "Polaris", "PFA", "Cov%", "")
	for _, row := range rows {
		fmt.Printf("%-10s %8.2f %8.2f %5.0f%%   %s\n",
			strings.ToUpper(row.Name), row.Polaris, row.PFA, 100*row.Coverage, bars(row.Polaris, row.PFA))
	}
	fmt.Println()
	return nil
}

func bars(polaris, pfa float64) string {
	bar := func(v float64, ch string) string {
		n := int(v*2 + 0.5)
		if n < 0 {
			n = 0
		}
		return strings.Repeat(ch, n)
	}
	return fmt.Sprintf("P|%s  F|%s", bar(polaris, "#"), bar(pfa, "-"))
}

func printFigure6(ctx context.Context, r *suite.Runner, maxP int) error {
	rows, err := r.Figure6(ctx, maxP)
	if err != nil {
		return err
	}
	fmt.Println("Figure 6 (top): Speedup of loop TRACK/NLFILT vs processors (10% of")
	fmt.Println("invocations fail the PD test and re-execute sequentially)")
	fmt.Printf("%5s %8s %8s %10s\n", "Procs", "Speedup", "Passes", "Failures")
	for _, row := range rows {
		fmt.Printf("%5d %8.2f %8d %10d\n", row.Procs, row.Speedup, row.Passes, row.Failures)
	}
	fmt.Println()
	fmt.Println("Figure 6 (bottom): Potential slowdown (Tseq + Tpdt)/Tseq vs processors")
	fmt.Printf("%5s %9s\n", "Procs", "Slowdown")
	for _, row := range rows {
		fmt.Printf("%5d %9.3f\n", row.Procs, row.Slowdown)
	}
	fmt.Println()
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polaris-bench:", err)
	os.Exit(1)
}
