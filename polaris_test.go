package polaris_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"polaris"
)

const facadeSrc = `
      PROGRAM FACADE
      REAL RESULT
      COMMON /OUT/ RESULT
      INTEGER N
      PARAMETER (N=400)
      REAL A(N), B(N), S
      INTEGER I
      DO I = 1, N
        B(I) = 0.25 * I
      END DO
      S = 0.0
      DO I = 1, N
        A(I) = B(I) + 1.0
        S = S + A(I)
      END DO
      RESULT = S
      END
`

func TestParseAndSource(t *testing.T) {
	prog, err := polaris.Parse(facadeSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !strings.Contains(prog.Source(), "PROGRAM FACADE") {
		t.Errorf("Source round trip lost the program header")
	}
	if _, err := polaris.Parse("      GARBAGE\n"); err == nil {
		t.Errorf("Parse accepted garbage")
	}
}

func TestParallelizeAndExecute(t *testing.T) {
	prog, err := polaris.Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.ParallelLoops() < 2 {
		t.Fatalf("parallel loops = %d:\n%s", res.ParallelLoops(), res.Summary())
	}
	if !strings.Contains(res.AnnotatedSource(), "C$OMP PARALLEL DO") {
		t.Errorf("annotated source missing directives")
	}

	serial, err := polaris.ExecuteProgram(prog, polaris.ExecOptions{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := polaris.Execute(res, polaris.ExecOptions{Processors: 8, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if par.Cycles >= serial.Cycles {
		t.Errorf("no speedup: %d vs %d", par.Cycles, serial.Cycles)
	}
	sSum, ok1 := serial.Probe("OUT", "RESULT")
	pSum, ok2 := par.Probe("OUT", "RESULT")
	if !ok1 || !ok2 || math.Abs(sSum-pSum) > 1e-6*(1+math.Abs(sSum)) {
		t.Errorf("checksums differ: %v vs %v", sSum, pSum)
	}
}

func TestBaselineWeaker(t *testing.T) {
	// A program needing array privatization: the baseline must find
	// strictly fewer parallel loops.
	src := `
      PROGRAM P
      INTEGER N
      PARAMETER (N=60)
      REAL B(N,N), C(N,N), W(N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          W(J) = B(J,I) * 2.0
        END DO
        DO K = 1, N
          C(K,I) = W(K) + 1.0
        END DO
      END DO
      END
`
	prog, err := polaris.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	full, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	base, err := polaris.Compile(context.Background(), prog, polaris.WithBaseline())
	if err != nil {
		t.Fatal(err)
	}
	outerParallel := func(r *polaris.Result) bool {
		for _, l := range r.Loops {
			if l.Index == "I" && l.Depth == 0 {
				return l.Parallel
			}
		}
		return false
	}
	if !outerParallel(full) {
		t.Errorf("Polaris failed the privatization loop:\n%s", full.Summary())
	}
	if outerParallel(base) {
		t.Errorf("baseline unexpectedly parallelized the outer loop")
	}
}

func TestTechniquesAblation(t *testing.T) {
	prog, err := polaris.Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	none, err := polaris.Compile(context.Background(), prog, polaris.WithTechniques(polaris.Techniques{}))
	if err != nil {
		t.Fatal(err)
	}
	full, err := polaris.Compile(context.Background(), prog, polaris.WithTechniques(polaris.FullTechniques()))
	if err != nil {
		t.Fatal(err)
	}
	if none.ParallelLoops() > full.ParallelLoops() {
		t.Errorf("empty technique set found more loops (%d) than full (%d)",
			none.ParallelLoops(), full.ParallelLoops())
	}
}

func TestSpeedupHelper(t *testing.T) {
	s, err := polaris.Speedup(facadeSrc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1.0 {
		t.Errorf("Speedup = %.2f, want > 1", s)
	}
}

func TestConcurrentExecution(t *testing.T) {
	prog, err := polaris.Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	run, err := polaris.Execute(res, polaris.ExecOptions{Processors: 4, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := run.Probe("OUT", "RESULT")
	serial, _ := polaris.ExecuteProgram(prog, polaris.ExecOptions{Serial: true})
	ref, _ := serial.Probe("OUT", "RESULT")
	if math.Abs(sum-ref) > 1e-6*(1+math.Abs(ref)) {
		t.Errorf("concurrent checksum %v != %v", sum, ref)
	}
}

func TestReductionFormOption(t *testing.T) {
	prog, err := polaris.Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	var times []int64
	for _, form := range []string{"private", "blocked", "expanded"} {
		run, err := polaris.Execute(res, polaris.ExecOptions{Processors: 8, ReductionForm: form})
		if err != nil {
			t.Fatalf("%s: %v", form, err)
		}
		times = append(times, run.Cycles)
	}
	if times[0] == times[1] && times[1] == times[2] {
		t.Errorf("reduction forms indistinguishable: %v", times)
	}
	if _, err := polaris.Execute(res, polaris.ExecOptions{ReductionForm: "bogus"}); err == nil {
		t.Errorf("bogus reduction form accepted")
	}
}

func TestExecuteRuntimeErrorSurfaces(t *testing.T) {
	prog, err := polaris.Parse(`
      PROGRAM P
      REAL A(5)
      INTEGER I
      I = 99
      A(I) = 1.0
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := polaris.ExecuteProgram(prog, polaris.ExecOptions{Serial: true}); err == nil {
		t.Errorf("out-of-bounds program executed without error")
	}
}
