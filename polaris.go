// Package polaris is a from-scratch Go reproduction of the Polaris
// parallelizing compiler ("Restructuring Programs for High-Speed
// Computers with Polaris", Blume et al., ICPP 1996): a source-to-source
// automatic restructurer for a Fortran 77 subset.
//
// The package is a façade over the internal subsystems. The typical
// flow is:
//
//	prog, err := polaris.Parse(src)
//	res, err := polaris.Compile(ctx, prog)       // full technique set
//	fmt.Print(res.AnnotatedSource())             // restructured Fortran
//	run, err := polaris.Execute(res, polaris.ExecOptions{Processors: 8})
//	fmt.Println(run.Speedup)                     // vs serial execution
//
// Compile takes functional options: WithTechniques selects a subset of
// passes, WithBaseline compiles at the 1996 vendor (PFA) level the
// paper compares against, WithTrace streams per-pass JSONL events,
// WithStats collects dependence-test counts, and WithProcessors picks
// the default simulated machine size. Every compilation runs through
// the instrumented pass manager, so Result.Report carries per-pass
// wall time and mutation counts.
//
// Technique sets: the default applies everything the paper describes —
// inline expansion, generalized induction-variable substitution,
// reduction recognition (single-address and histogram), scalar and
// array privatization, symbolic dependence analysis with the range
// test and loop-order permutation, and LRPD (run-time PD test)
// candidate flagging.
//
// Hardware substitution: execution happens on a simulated
// shared-memory multiprocessor (package internal/machine) with a
// deterministic cycle model, standing in for the paper's 8-processor
// SGI Challenge; see DESIGN.md.
package polaris

import (
	"context"
	"fmt"
	"strings"
	"time"

	"polaris/internal/core"
	"polaris/internal/deps"
	"polaris/internal/interp"
	"polaris/internal/ir"
	"polaris/internal/machine"
	"polaris/internal/parser"
	"polaris/internal/pfa"
)

// Program is a parsed Fortran program.
type Program struct {
	ir *ir.Program
}

// Parse parses Fortran-subset source into a Program. Failures are
// *parser.ParseError values carrying line and column.
func Parse(src string) (*Program, error) {
	p, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return &Program{ir: p}, nil
}

// Source renders the program back to Fortran.
func (p *Program) Source() string { return p.ir.Fortran() }

// LoopInfo describes one analyzed loop.
type LoopInfo struct {
	// ID is the loop's stable identity ("MAIN/L30"), shared with the
	// observer's decision records and runtime metrics. Empty for
	// baseline compilations.
	ID       string
	Unit     string
	Index    string
	Depth    int
	Parallel bool
	// RunTimeTest lists arrays the loop will be speculatively tested
	// over at run time (the LRPD/PD test), empty otherwise.
	RunTimeTest []string
	Reason      string
}

// PassEvent reports one pipeline pass of a compilation.
type PassEvent struct {
	// Pass is the pass name (for example "inline" or
	// "dependence-analysis").
	Pass string
	// Duration is the pass's wall-clock time.
	Duration time.Duration
	// Mutations counts IR changes by kind (calls_inlined,
	// variables_substituted, loops_annotated, verdict_flips, ...).
	Mutations map[string]int64
}

// PipelineReport is the pass manager's instrumentation for one
// compilation, in pipeline order.
type PipelineReport struct {
	// Label is the compilation label set by WithTraceLabel.
	Label string
	// Events lists the executed passes in order.
	Events []PassEvent
	// Total is the summed pass wall time.
	Total time.Duration
}

// Result is a compiled (restructured and annotated) program.
type Result struct {
	inner *core.Result
	// CodegenFactor models back-end code quality (1.0 for Polaris; set
	// by the baseline's heuristics for PFA).
	CodegenFactor float64
	// Loops reports the per-loop verdicts, outermost first.
	Loops []LoopInfo
	// InlinedCalls counts expanded call sites.
	InlinedCalls int
	// InductionVariables lists substituted induction variables
	// (qualified by unit).
	InductionVariables []string
	// Report carries the pass manager's per-pass timings and mutation
	// counts (nil for baseline compilations, which bypass the Polaris
	// pipeline).
	Report *PipelineReport
	// UnitsReused / UnitsRecompiled report the incremental split when
	// the compilation ran with WithIncremental: how many program units
	// were served from the unit memo versus re-run through the per-unit
	// passes. Both are zero without a memo.
	UnitsReused     int
	UnitsRecompiled int

	// processors is the WithProcessors default for Execute.
	processors int
}

func wrapResult(res *core.Result, factor float64) *Result {
	out := &Result{inner: res, CodegenFactor: factor,
		InlinedCalls: res.InlinedCalls, InductionVariables: res.InductionVars,
		UnitsReused: res.UnitsReused, UnitsRecompiled: res.UnitsRecompiled}
	for _, lr := range res.Loops {
		out.Loops = append(out.Loops, LoopInfo{
			ID: lr.ID, Unit: lr.Unit, Index: lr.Index, Depth: lr.Depth,
			Parallel: lr.Parallel, RunTimeTest: lr.LRPD, Reason: lr.Reason,
		})
	}
	if res.Report != nil {
		rep := &PipelineReport{Label: res.Report.Label, Total: res.Report.Total()}
		for _, ev := range res.Report.Events {
			rep.Events = append(rep.Events, PassEvent{
				Pass:      ev.Pass,
				Duration:  time.Duration(ev.DurationNS),
				Mutations: ev.Mutations,
			})
		}
		out.Report = rep
	}
	return out
}

// Compile runs the restructuring pipeline on the program under ctx and
// returns the annotated result. The input program is not modified.
// With no options it applies the paper's full technique set; see
// Option for technique selection, baseline mode, tracing, and stats.
//
// Cancellation is honored between and inside passes: when ctx is
// canceled, Compile returns ctx.Err() promptly. Pass failures surface
// as *core.PipelineError naming the failed pass.
func Compile(ctx context.Context, p *Program, opts ...Option) (*Result, error) {
	cfg := defaultCompileConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.baseline {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := pfa.Compile(p.ir)
		if err != nil {
			return nil, err
		}
		out := wrapResult(res.Result, res.Factor)
		// The baseline reuses the pipeline machinery internally, but its
		// instrumentation describes the vendor model, not the Polaris
		// pipeline; keep the documented "nil for baseline" contract.
		out.Report = nil
		out.processors = cfg.processors
		return out, nil
	}
	copt := coreOptions(cfg.techniques)
	var dstats deps.Stats
	if cfg.stats != nil {
		copt.Stats = &dstats
	}
	copt.Trace = cfg.trace
	copt.TraceLabel = cfg.traceLabel
	copt.Observer = cfg.observer
	copt.UnitWorkers = cfg.unitWorkers
	if cfg.memo != nil {
		copt.UnitMemo = cfg.memo.inner
	}
	res, err := core.CompileContext(ctx, p.ir, copt)
	if err != nil {
		return nil, err
	}
	if cfg.stats != nil {
		cfg.stats.fill(dstats)
	}
	out := wrapResult(res, 1.0)
	out.processors = cfg.processors
	return out, nil
}

// Parallelize runs the full Polaris pipeline on the program.
//
// Deprecated: use Compile(ctx, p).
func Parallelize(p *Program) (*Result, error) {
	return Compile(context.Background(), p)
}

// ParallelizeWith runs the pipeline with an explicit technique set.
//
// Deprecated: use Compile(ctx, p, WithTechniques(opt)).
func ParallelizeWith(p *Program, opt Techniques) (*Result, error) {
	return Compile(context.Background(), p, WithTechniques(opt))
}

// ParallelizeBaseline runs the 1996-vendor (PFA) capability level,
// including its modelled back-end code-quality factor.
//
// Deprecated: use Compile(ctx, p, WithBaseline()).
func ParallelizeBaseline(p *Program) (*Result, error) {
	return Compile(context.Background(), p, WithBaseline())
}

// Techniques selects individual passes for WithTechniques.
type Techniques struct {
	Inline                   bool
	Induction                bool
	SimpleInduction          bool
	Reductions               bool
	HistogramReductions      bool
	ArrayPrivatization       bool
	RangeTest                bool
	LoopPermutation          bool
	RunTimeTest              bool
	StrengthReduction        bool
	LoopNormalization        bool
	InterproceduralConstants bool
}

// FullTechniques returns the paper's complete set.
func FullTechniques() Techniques {
	return Techniques{
		Inline: true, Induction: true, Reductions: true,
		HistogramReductions: true, ArrayPrivatization: true,
		RangeTest: true, LoopPermutation: true, RunTimeTest: true,
		StrengthReduction: true, LoopNormalization: true,
		InterproceduralConstants: true,
	}
}

// AnnotatedSource emits the restructured Fortran with parallel
// directives and the compilation report header.
//
// Deprecated: use Emit(w, EmitFortran), which streams to a writer and
// supports the Go backend via EmitGo.
func (r *Result) AnnotatedSource() string {
	var b strings.Builder
	_ = r.Emit(&b, EmitFortran)
	return b.String()
}

// Summary renders a human-readable per-loop report.
func (r *Result) Summary() string { return r.inner.Summary() }

// ParallelLoops counts DOALL verdicts.
func (r *Result) ParallelLoops() int { return r.inner.ParallelLoops() }

// ExecOptions configures simulated execution.
type ExecOptions struct {
	// Processors on the simulated machine (default: the result's
	// WithProcessors value, or 8).
	Processors int
	// Serial disables parallel execution (baseline timing).
	Serial bool
	// Validate runs parallel iterations in reverse order with fresh
	// private copies, to surface order dependence.
	Validate bool
	// Concurrent executes DOALL iterations on real goroutines.
	Concurrent bool
	// ReductionForm selects the parallel reduction implementation:
	// "private" (default), "blocked", or "expanded" — the three forms
	// of the paper's Section 3.2.
	ReductionForm string
	// Observer, when non-nil, records the run's metrics (per-loop
	// cycles, parallel coverage, speculation outcomes) under Label.
	Observer *Observer
	// Label tags the run in the observer's records (typically the
	// program name; matches the compilation's WithTraceLabel).
	Label string
}

// RunResult reports a simulated execution.
type RunResult struct {
	// Cycles is the simulated execution time.
	Cycles int64
	// Work is the total serial-equivalent work executed.
	Work int64
	// ParallelWork is the portion of Work executed inside successful
	// parallel regions; Coverage is ParallelWork/Work.
	ParallelWork int64
	Coverage     float64
	// ParallelLoopExecs counts DOALL loop executions.
	ParallelLoopExecs int64
	// PDTestPasses / PDTestFailures count speculative loop outcomes.
	PDTestPasses   int64
	PDTestFailures int64
	// Probe reads a scalar in a COMMON block after execution.
	Probe func(block, name string) (float64, bool)
}

// Execute runs a compiled program on the simulated machine.
func Execute(r *Result, opt ExecOptions) (*RunResult, error) {
	return ExecuteContext(context.Background(), r, opt)
}

// ExecuteContext runs a compiled program on the simulated machine
// under ctx; a canceled context aborts the execution loop promptly.
func ExecuteContext(ctx context.Context, r *Result, opt ExecOptions) (*RunResult, error) {
	if opt.Processors <= 0 {
		opt.Processors = r.processors
	}
	return execute(ctx, r.inner.Program, r.CodegenFactor, opt)
}

// ExecuteProgram runs an unrestructured program (serial semantics
// unless its loops carry annotations).
func ExecuteProgram(p *Program, opt ExecOptions) (*RunResult, error) {
	return ExecuteProgramContext(context.Background(), p, opt)
}

// ExecuteProgramContext is ExecuteProgram under a cancellation
// context.
func ExecuteProgramContext(ctx context.Context, p *Program, opt ExecOptions) (*RunResult, error) {
	return execute(ctx, p.ir, 1.0, opt)
}

func execute(ctx context.Context, prog *ir.Program, factor float64, opt ExecOptions) (*RunResult, error) {
	procs := opt.Processors
	if procs <= 0 {
		procs = 8
	}
	model := machine.Default().WithProcessors(procs).WithCodegenFactor(factor)
	switch opt.ReductionForm {
	case "", "private":
		model = model.WithReductions(machine.ReductionPrivate)
	case "blocked":
		model = model.WithReductions(machine.ReductionBlocked)
	case "expanded":
		model = model.WithReductions(machine.ReductionExpanded)
	default:
		return nil, fmt.Errorf("polaris: unknown reduction form %q", opt.ReductionForm)
	}
	in := interp.New(prog, model)
	in.Parallel = !opt.Serial
	in.Validate = opt.Validate
	in.Concurrent = opt.Concurrent
	if err := in.RunContext(ctx); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("polaris: execution: %w", err)
	}
	if opt.Observer != nil {
		opt.Observer.inner.Run(in.Metrics(opt.Label))
	}
	return &RunResult{
		Cycles:            in.Time(),
		Work:              in.Work(),
		ParallelWork:      in.ParallelWork(),
		Coverage:          in.Coverage(),
		ParallelLoopExecs: in.ParallelLoopExecs,
		PDTestPasses:      in.LRPDPasses,
		PDTestFailures:    in.LRPDFailures,
		Probe:             in.Probe,
	}, nil
}

// Speedup compiles and runs the program both serially and in parallel
// on p processors and returns serial-cycles / parallel-cycles — the
// quantity Figure 7 plots.
func Speedup(src string, processors int) (float64, error) {
	ctx := context.Background()
	prog, err := Parse(src)
	if err != nil {
		return 0, err
	}
	serial, err := ExecuteProgram(prog, ExecOptions{Serial: true})
	if err != nil {
		return 0, err
	}
	res, err := Compile(ctx, prog)
	if err != nil {
		return 0, err
	}
	par, err := Execute(res, ExecOptions{Processors: processors})
	if err != nil {
		return 0, err
	}
	return float64(serial.Cycles) / float64(par.Cycles), nil
}
