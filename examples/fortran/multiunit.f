      PROGRAM MAIN
      REAL A(64), B(64)
      INTEGER I
      COMMON /BLK/ A, B
      DO I = 1, 64
        A(I) = B(I) + 1.0
      END DO
      CALL S1(64)
      CALL S2(0.5)
      CALL S3(0.5)
      END

      SUBROUTINE S1(N)
      INTEGER N
      REAL A(64), B(64)
      INTEGER I
      COMMON /BLK/ A, B
      DO I = 1, N
        A(I) = A(I) * 2.0
      END DO
      END

      SUBROUTINE S2(DUMMY)
      REAL DUMMY
      REAL A(64), B(64)
      INTEGER J
      COMMON /BLK/ A, B
      DO J = 1, 64
        B(J) = A(J) + 3.0
      END DO
      END

      SUBROUTINE S3(DUMMY)
      REAL DUMMY
      REAL A(64), B(64)
      INTEGER K
      COMMON /BLK/ A, B
      DO K = 1, 64
        B(K) = A(K) + 4.0
      END DO
      END
