C saxpy.f — a tiny Fortran-subset source for the command-line tools:
C
C   go run ./cmd/polaris examples/fortran/saxpy.f
C   go run ./cmd/polaris-run -p 8 examples/fortran/saxpy.f
C
      PROGRAM SAXPY
      REAL RESULT
      COMMON /OUT/ RESULT
      INTEGER N
      PARAMETER (N=4000)
      REAL X(N), Y(N), S
      INTEGER I, K
      DO I = 1, N
        X(I) = 0.001 * I
        Y(I) = 2.0 - 0.0005 * I
      END DO
      K = 0
      S = 0.0
      DO I = 1, N
        K = K + 1
        Y(K) = Y(K) + 2.5 * X(K)
        S = S + Y(K)
      END DO
      RESULT = S
      END
