// Speculative example — the paper's Section 3.5 and Figure 6. The
// TRACK NLFILT loop updates X through a run-time index array, so no
// compile-time test applies; Polaris flags it for the PD test and the
// runtime executes it speculatively, re-executing sequentially when
// the test detects a cross-iteration dependence (10% of invocations
// here).
package main

import (
	"context"
	"fmt"
	"log"

	"polaris"
	"polaris/internal/suite"
)

func main() {
	p := suite.Track()
	prog, err := polaris.Parse(p.Source)
	if err != nil {
		log.Fatal(err)
	}

	res, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range res.Loops {
		if len(l.RunTimeTest) > 0 {
			fmt.Printf("loop DO %s: speculative PD test over %v\n", l.Index, l.RunTimeTest)
		}
	}

	serial, err := polaris.ExecuteProgram(prog, polaris.ExecOptions{Serial: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%5s %9s %8s %9s\n", "procs", "speedup", "passes", "failures")
	for _, procs := range []int{1, 2, 4, 8} {
		par, err := polaris.Execute(res, polaris.ExecOptions{Processors: procs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d %9.2f %8d %9d\n", procs,
			float64(serial.Cycles)/float64(par.Cycles), par.PDTestPasses, par.PDTestFailures)
	}
	fmt.Println("\n(the PD test passes on the 90% of invocations whose index array is")
	fmt.Println("a permutation, and detects the duplicated index in the rest)")
}
