// BDNA example — the paper's Figure 5. The outer loop gathers through
// a compressed index list: privatizing the work arrays A and IND needs
// the GSA-based demand-driven analysis plus monotonic-variable
// identification (P increments by one under a condition; IND(P) = K
// writes a dense prefix whose values lie in [1, I-1]).
package main

import (
	"context"
	"fmt"
	"log"

	"polaris"
	"polaris/internal/suite"
)

func main() {
	p, _ := suite.ByName("bdna")
	prog, err := polaris.Parse(p.Source)
	if err != nil {
		log.Fatal(err)
	}

	res, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Polaris verdicts ===")
	fmt.Print(res.Summary())

	// The outer I loop of the gather/compress nest must be parallel,
	// and that only works because A and IND are privatized.
	noPriv := polaris.FullTechniques()
	noPriv.ArrayPrivatization = false
	resNoPriv, err := polaris.Compile(context.Background(), prog, polaris.WithTechniques(noPriv))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel loops with array privatization:    %d\n", res.ParallelLoops())
	fmt.Printf("parallel loops without array privatization: %d\n", resNoPriv.ParallelLoops())

	serial, err := polaris.ExecuteProgram(prog, polaris.ExecOptions{Serial: true})
	if err != nil {
		log.Fatal(err)
	}
	// Validate mode runs parallel iterations in reverse order with
	// fresh private copies: any order dependence would change the
	// checksum.
	par, err := polaris.Execute(res, polaris.ExecOptions{Processors: 8, Validate: true})
	if err != nil {
		log.Fatal(err)
	}
	refSum, _ := serial.Probe("OUT", "RESULT")
	gotSum, _ := par.Probe("OUT", "RESULT")
	fmt.Printf("\nserial checksum:   %g\n", refSum)
	fmt.Printf("parallel checksum: %g (reverse iteration order)\n", gotSum)
	fmt.Printf("speedup on 8 processors: %.2f\n", float64(serial.Cycles)/float64(par.Cycles))
}
