// Quickstart: parse a small Fortran program, run the full Polaris
// pipeline, print the restructured source, and measure the simulated
// speedup on 8 processors.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"polaris"
)

const src = `
      PROGRAM QUICK
      REAL RESULT
      COMMON /OUT/ RESULT
      INTEGER N
      PARAMETER (N=2000)
      REAL A(N), B(N), S
      INTEGER I, K
      DO I = 1, N
        B(I) = 0.5 * I
      END DO
      K = 0
      S = 0.0
      DO I = 1, N
        K = K + 1
        A(K) = B(K) * 2.0 + 1.0
        S = S + A(K)
      END DO
      RESULT = S
      END
`

func main() {
	prog, err := polaris.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	res, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== restructured program ===")
	if err := res.Emit(os.Stdout, polaris.EmitFortran); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Println("=== pipeline ===")
	for _, ev := range res.Report.Events {
		fmt.Printf("%-22s %v\n", ev.Pass, ev.Duration)
	}

	serial, err := polaris.ExecuteProgram(prog, polaris.ExecOptions{Serial: true})
	if err != nil {
		log.Fatal(err)
	}
	par, err := polaris.Execute(res, polaris.ExecOptions{Processors: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial:   %d cycles\n", serial.Cycles)
	fmt.Printf("parallel: %d cycles on 8 processors\n", par.Cycles)
	fmt.Printf("speedup:  %.2f\n", float64(serial.Cycles)/float64(par.Cycles))
	if sum, ok := par.Probe("OUT", "RESULT"); ok {
		ref, _ := serial.Probe("OUT", "RESULT")
		fmt.Printf("checksum: %g (serial %g)\n", sum, ref)
	}
}
