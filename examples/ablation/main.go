// Ablation: measure, across the whole 16-program suite, how much each
// Polaris technique contributes — remove one technique at a time from
// the full pipeline and report the geometric-mean speedup on the
// simulated 8-processor machine, plus the programs that lose more than
// 20% of their full-pipeline speedup. (This regenerates the implicit
// claim of the paper's Section 3: every technique family is necessary
// for some of the codes.)
package main

import (
	"fmt"
	"log"
	"strings"

	"polaris/internal/suite"
)

func main() {
	rows, err := suite.Ablation(8)
	if err != nil {
		log.Fatal(err)
	}
	if len(rows) == 0 {
		log.Fatal("no ablation rows")
	}
	fmt.Printf("full pipeline geometric-mean speedup: %.2f\n\n", rows[0].FullGeoMean)
	fmt.Printf("%-24s %8s   %s\n", "removed technique", "geomean", "programs losing > 20%")
	for _, r := range rows {
		fmt.Printf("%-24s %8.2f   %s\n", r.Technique, r.GeoMean, strings.Join(r.HurtPrograms, " "))
	}
}
