// OCEAN example — the paper's Figure 3 (FTRVMT/109). The loop nest
// writes A(258*NX*J + 129*K + I + 1) and the same plus 129*NX: the
// ranges of successive K iterations interleave, so the range test only
// succeeds after permuting the loop visitation order (J outermost).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"polaris"
	"polaris/internal/suite"
)

func main() {
	p, _ := suite.ByName("ocean")
	prog, err := polaris.Parse(p.Source)
	if err != nil {
		log.Fatal(err)
	}

	// Without permutation the outer loop cannot be proven.
	noPerm := polaris.FullTechniques()
	noPerm.LoopPermutation = false
	resNoPerm, err := polaris.Compile(context.Background(), prog, polaris.WithTechniques(noPerm))
	if err != nil {
		log.Fatal(err)
	}
	resFull, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== without loop permutation ===")
	printMainNest(resNoPerm)
	fmt.Println("\n=== with loop permutation (full Polaris) ===")
	printMainNest(resFull)

	serial, err := polaris.ExecuteProgram(prog, polaris.ExecOptions{Serial: true})
	if err != nil {
		log.Fatal(err)
	}
	par, err := polaris.Execute(resFull, polaris.ExecOptions{Processors: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspeedup on 8 processors: %.2f\n", float64(serial.Cycles)/float64(par.Cycles))
}

// printMainNest shows the verdicts for the triple nest (the loops with
// depth > 0 or the K loop that contains them).
func printMainNest(res *polaris.Result) {
	for _, l := range res.Loops {
		if l.Index != "K" && l.Index != "J" && l.Index != "I" || l.Depth == 0 && l.Index == "I" {
			continue
		}
		status := "serial"
		if l.Parallel {
			status = "PARALLEL"
		}
		fmt.Printf("%sDO %s  %s  (%s)\n", strings.Repeat("  ", l.Depth), l.Index, status, l.Reason)
	}
}
