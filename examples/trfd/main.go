// TRFD example — the paper's Figure 2. The OLDA kernel's induction
// variable X produces the nonlinear subscript
// (I*(N**2+N) + J**2 - J)/2 + K + 1 after substitution; only the range
// test can prove the loops independent. The example shows the
// transformation, compares against the vendor-level baseline, and
// runs an ablation over technique sets.
package main

import (
	"context"
	"fmt"
	"log"

	"polaris"
	"polaris/internal/suite"
)

func main() {
	p, _ := suite.ByName("trfd")
	prog, err := polaris.Parse(p.Source)
	if err != nil {
		log.Fatal(err)
	}

	full, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Polaris (full technique set) ===")
	fmt.Print(full.Summary())
	fmt.Printf("induction variables substituted: %v\n\n", full.InductionVariables)

	baseline, err := polaris.Compile(context.Background(), prog, polaris.WithBaseline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== PFA-level baseline ===")
	fmt.Print(baseline.Summary())

	// Ablation: which techniques does TRFD actually need?
	fmt.Println("\n=== ablation (parallel loops found) ===")
	configs := []struct {
		name string
		t    polaris.Techniques
	}{
		{"linear tests only", polaris.Techniques{SimpleInduction: true, Reductions: true}},
		{"+ generalized induction", polaris.Techniques{Induction: true, Reductions: true}},
		{"+ range test", polaris.Techniques{Induction: true, Reductions: true, RangeTest: true}},
		{"+ inlining (full)", polaris.FullTechniques()},
	}
	for _, c := range configs {
		res, err := polaris.Compile(context.Background(), prog, polaris.WithTechniques(c.t))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %d parallel loops\n", c.name, res.ParallelLoops())
	}

	serial, err := polaris.ExecuteProgram(prog, polaris.ExecOptions{Serial: true})
	if err != nil {
		log.Fatal(err)
	}
	par, err := polaris.Execute(full, polaris.ExecOptions{Processors: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspeedup on 8 processors: %.2f\n", float64(serial.Cycles)/float64(par.Cycles))
}
