package polaris_test

// Tests for the redesigned emit surface: Result.Emit(w, ...EmitOption)
// with the EmitFortran / EmitGo targets, and the deprecated
// AnnotatedSource wrapper's byte-for-byte compatibility.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"polaris"
)

// TestEmitAPIBackcompat pins the deprecated AnnotatedSource to the new
// surface: its output must be byte-identical to Emit(EmitFortran),
// which must also be the default target.
func TestEmitAPIBackcompat(t *testing.T) {
	prog, err := polaris.Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	legacy := res.AnnotatedSource()
	if !strings.Contains(legacy, "C$OMP PARALLEL DO") {
		t.Fatalf("annotated source lost its directives:\n%s", legacy)
	}
	var viaEmit bytes.Buffer
	if err := res.Emit(&viaEmit, polaris.EmitFortran); err != nil {
		t.Fatal(err)
	}
	if viaEmit.String() != legacy {
		t.Errorf("Emit(EmitFortran) differs from AnnotatedSource()")
	}
	var viaDefault bytes.Buffer
	if err := res.Emit(&viaDefault); err != nil {
		t.Fatal(err)
	}
	if viaDefault.String() != legacy {
		t.Errorf("Emit with no options must default to the Fortran target")
	}
}

// TestEmitGoTarget checks the Go target through the public API: a
// standalone main package with the requested worker count baked in.
func TestEmitGoTarget(t *testing.T) {
	prog, err := polaris.Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := polaris.Compile(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.Emit(&b, polaris.EmitGo, polaris.WithEmitProcessors(4), polaris.WithEmitLabel("facade")); err != nil {
		t.Fatal(err)
	}
	src := b.String()
	for _, want := range []string{
		"package main",
		"const defaultProcs = 4",
		"facade",
		"parfor(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted Go missing %q", want)
		}
	}
}
